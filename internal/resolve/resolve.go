// Package resolve provides the conflict resolution strategies
// discussed in §4.1 and §5 of the paper, all implementing the
// core.Strategy (SELECT) interface:
//
//   - Inertia — the principle of inertia (re-exported from core)
//   - Priority — rule priorities (Ariel, Postgres, Starburst style)
//   - Specificity — the AI principle "more specific rules win"
//   - Interactive — ask the user on every conflict
//   - Voting — a panel of critics, majority wins
//   - Random — seeded random choice
//   - Fallback — chain of partial strategies
//   - ProtectUpdates — transaction updates cannot be overridden
//
// Strategies that can abstain (Specificity, Voting on a tie) return
// ErrUndecided and are meant to be composed with Fallback.
package resolve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
)

// ErrUndecided is returned by partial strategies when they cannot
// order the two sides of a conflict; compose them with Fallback.
var ErrUndecided = errors.New("resolve: strategy cannot decide this conflict")

// Inertia returns the principle-of-inertia strategy (§4.1): the atom
// keeps the status it had in the original database instance.
func Inertia() core.Strategy { return core.InertiaStrategy{} }

// Priority implements rule-priority conflict resolution (§5): the
// side whose rules reach the highest priority wins. TieBreak resolves
// equal maxima (nil means insert wins ties, matching the convention
// that the paper's examples never exercise).
type Priority struct {
	// TieBreak optionally resolves equal-priority conflicts.
	TieBreak core.Strategy
}

// Name implements core.Strategy.
func (p Priority) Name() string { return "priority" }

// Select implements core.Strategy.
func (p Priority) Select(in *core.SelectInput) (core.Decision, error) {
	maxPrio := func(gs []core.Grounding) int {
		m := math.MinInt
		for _, g := range gs {
			if pr := in.Program.Rules[g.Rule].Priority; pr > m {
				m = pr
			}
		}
		return m
	}
	ins, del := maxPrio(in.Conflict.Ins), maxPrio(in.Conflict.Del)
	switch {
	case ins > del:
		return core.DecideInsert, nil
	case del > ins:
		return core.DecideDelete, nil
	case p.TieBreak != nil:
		return p.TieBreak.Select(in)
	default:
		return core.DecideInsert, nil
	}
}

// Specificity implements the specificity principle sketched in §5:
// "more specific rules should be given priority over more general
// rules" (penguins over birds). A rule r is at least as specific as
// r' when the body of r' θ-subsumes the body of r, i.e. some variable
// substitution maps every body literal of r' onto a body literal of
// r. The side whose rules are strictly more specific wins; if the two
// sides are incomparable the strategy abstains with ErrUndecided —
// the paper itself notes specificity "is not a complete conflict
// resolution strategy" and must be combined with others (use
// Fallback).
type Specificity struct{}

// Name implements core.Strategy.
func (Specificity) Name() string { return "specificity" }

// Select implements core.Strategy.
func (Specificity) Select(in *core.SelectInput) (core.Decision, error) {
	// A side is "strictly more specific" if every rule on the other
	// side subsumes some rule on this side, and not vice versa.
	insMore := sideMoreSpecific(in.Program, in.Conflict.Ins, in.Conflict.Del)
	delMore := sideMoreSpecific(in.Program, in.Conflict.Del, in.Conflict.Ins)
	switch {
	case insMore && !delMore:
		return core.DecideInsert, nil
	case delMore && !insMore:
		return core.DecideDelete, nil
	default:
		return 0, ErrUndecided
	}
}

// sideMoreSpecific reports whether every rule of side a is subsumed
// by (i.e. at least as specific as) some rule of side b, with at
// least one strict subsumption.
func sideMoreSpecific(p *core.Program, a, b []core.Grounding) bool {
	strict := false
	for _, ga := range a {
		ra := &p.Rules[ga.Rule]
		ok := false
		for _, gb := range b {
			rb := &p.Rules[gb.Rule]
			if Subsumes(rb, ra) {
				ok = true
				if !Subsumes(ra, rb) {
					strict = true
				}
				break
			}
		}
		if !ok {
			return false
		}
	}
	return strict
}

// Subsumes reports whether the body of general θ-subsumes the body of
// specific: there is a substitution of general's variables (to
// specific's terms) under which every body literal of general occurs
// in specific's body. Intuitively, general applies whenever specific
// does, so specific is the more specific rule.
func Subsumes(general, specific *core.Rule) bool {
	theta := make([]core.Term, general.NumVars)
	bound := make([]bool, general.NumVars)
	var match func(i int) bool
	unifyTerm := func(tg, ts core.Term, trail *[]int) bool {
		if !tg.IsVar() {
			return !ts.IsVar() && tg.Const() == ts.Const()
		}
		v := tg.Var()
		if bound[v] {
			return theta[v] == ts
		}
		theta[v] = ts
		bound[v] = true
		*trail = append(*trail, v)
		return true
	}
	match = func(i int) bool {
		if i == len(general.Body) {
			return true
		}
		lg := general.Body[i]
		for _, ls := range specific.Body {
			if ls.Kind != lg.Kind || ls.Atom.Pred != lg.Atom.Pred || len(ls.Atom.Args) != len(lg.Atom.Args) {
				continue
			}
			var trail []int
			ok := true
			for k := range lg.Atom.Args {
				if !unifyTerm(lg.Atom.Args[k], ls.Atom.Args[k], &trail) {
					ok = false
					break
				}
			}
			if ok && match(i+1) {
				return true
			}
			for _, v := range trail {
				bound[v] = false
			}
		}
		return false
	}
	return match(0)
}

// Interactive queries the user for every conflict (§5): it prints the
// conflict on W and reads "i"/"insert" or "d"/"delete" from R. EOF or
// an unrecognized answer after 3 attempts is an error.
type Interactive struct {
	R io.Reader
	W io.Writer

	br *bufio.Reader
}

// Name implements core.Strategy.
func (i *Interactive) Name() string { return "interactive" }

// Select implements core.Strategy.
func (i *Interactive) Select(in *core.SelectInput) (core.Decision, error) {
	if i.br == nil {
		i.br = bufio.NewReader(i.R)
	}
	for attempt := 0; attempt < 3; attempt++ {
		fmt.Fprintf(i.W, "conflict %s\n", in.Conflict.String(in.Universe, in.Program))
		fmt.Fprintf(i.W, "insert or delete %s? [i/d] ", in.Universe.AtomString(in.Conflict.Atom))
		line, err := i.br.ReadString('\n')
		if err != nil && line == "" {
			return 0, fmt.Errorf("reading answer: %w", err)
		}
		switch strings.ToLower(strings.TrimSpace(line)) {
		case "i", "insert", "+":
			return core.DecideInsert, nil
		case "d", "delete", "-":
			return core.DecideDelete, nil
		}
		fmt.Fprintln(i.W, "please answer 'i' or 'd'")
	}
	return 0, errors.New("resolve: no valid interactive answer after 3 attempts")
}

// Critic is one voter of the Voting scheme (§5): a program that
// inspects a conflict and votes insert or delete.
type Critic interface {
	Name() string
	Vote(in *core.SelectInput) (core.Decision, error)
}

// CriticFunc adapts a function to the Critic interface.
type CriticFunc struct {
	CriticName string
	Fn         func(in *core.SelectInput) (core.Decision, error)
}

// Name implements Critic.
func (c CriticFunc) Name() string { return c.CriticName }

// Vote implements Critic.
func (c CriticFunc) Vote(in *core.SelectInput) (core.Decision, error) { return c.Fn(in) }

// Voting implements the voting scheme of §5: every critic votes and
// the majority opinion is adopted. Ties abstain with ErrUndecided
// (compose with Fallback). A critic error aborts the evaluation.
type Voting struct {
	Critics []Critic
}

// Name implements core.Strategy.
func (v Voting) Name() string { return "voting" }

// Select implements core.Strategy.
func (v Voting) Select(in *core.SelectInput) (core.Decision, error) {
	if len(v.Critics) == 0 {
		return 0, errors.New("resolve: voting strategy has no critics")
	}
	ins, del := 0, 0
	for _, c := range v.Critics {
		d, err := c.Vote(in)
		if err != nil {
			return 0, fmt.Errorf("critic %q: %w", c.Name(), err)
		}
		if d == core.DecideInsert {
			ins++
		} else {
			del++
		}
	}
	switch {
	case ins > del:
		return core.DecideInsert, nil
	case del > ins:
		return core.DecideDelete, nil
	default:
		return 0, ErrUndecided
	}
}

// Random implements the random scheme of §5 with a seeded source, so
// a run remains reproducible for a fixed seed.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a random strategy with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements core.Strategy.
func (r *Random) Name() string { return "random" }

// Select implements core.Strategy.
func (r *Random) Select(in *core.SelectInput) (core.Decision, error) {
	if r.rng.Intn(2) == 0 {
		return core.DecideInsert, nil
	}
	return core.DecideDelete, nil
}

// Fallback composes partial strategies: each is tried in order and
// the first decision wins; ErrUndecided moves on to the next. All
// strategies abstaining is an error.
type Fallback struct {
	Strategies []core.Strategy
}

// Name implements core.Strategy.
func (f Fallback) Name() string {
	names := make([]string, len(f.Strategies))
	for i, s := range f.Strategies {
		names[i] = s.Name()
	}
	return "fallback(" + strings.Join(names, ",") + ")"
}

// Select implements core.Strategy.
func (f Fallback) Select(in *core.SelectInput) (core.Decision, error) {
	for _, s := range f.Strategies {
		d, err := s.Select(in)
		if err == nil {
			return d, nil
		}
		if !errors.Is(err, ErrUndecided) {
			return 0, err
		}
	}
	return 0, fmt.Errorf("resolve: %s: %w", f.Name(), ErrUndecided)
}

// ProtectUpdates wraps a strategy so that transaction updates can
// never be overridden by rules (§4.3 discusses coding exactly this
// into the conflict resolution policy): if one side of the conflict
// contains an update rule (empty body, auto-generated by P_U) that
// side wins; otherwise the inner strategy decides. Conflicting
// updates on both sides fall through to the inner strategy as well.
type ProtectUpdates struct {
	Inner core.Strategy
}

// Name implements core.Strategy.
func (p ProtectUpdates) Name() string { return "protect-updates(" + p.Inner.Name() + ")" }

// Select implements core.Strategy.
func (p ProtectUpdates) Select(in *core.SelectInput) (core.Decision, error) {
	hasUpdate := func(gs []core.Grounding) bool {
		for _, g := range gs {
			r := &in.Program.Rules[g.Rule]
			if len(r.Body) == 0 && strings.HasPrefix(r.Name, "update:") {
				return true
			}
		}
		return false
	}
	ins, del := hasUpdate(in.Conflict.Ins), hasUpdate(in.Conflict.Del)
	switch {
	case ins && !del:
		return core.DecideInsert, nil
	case del && !ins:
		return core.DecideDelete, nil
	default:
		return p.Inner.Select(in)
	}
}
