package resolve

import "repro/internal/core"

// Pre-built critics for the Voting scheme, matching the intuitions
// the paper sketches in §5: recency ("later information may be
// preferred"), source reliability ("one of these sources is more
// reliable than the other" — approximated by rule priority), and
// database conservatism (the inertia intuition as one voice among
// several rather than the whole policy).

// RecencyCritic prefers the new information over the status quo: it
// always votes to perform the insertion.
func RecencyCritic() Critic {
	return CriticFunc{CriticName: "recency", Fn: func(*core.SelectInput) (core.Decision, error) {
		return core.DecideInsert, nil
	}}
}

// ConservativeCritic votes to keep the original database status —
// the principle of inertia as a single vote.
func ConservativeCritic() Critic {
	return CriticFunc{CriticName: "conservative", Fn: func(in *core.SelectInput) (core.Decision, error) {
		if in.Database.Contains(in.Conflict.Atom) {
			return core.DecideInsert, nil
		}
		return core.DecideDelete, nil
	}}
}

// ReliabilityCritic trusts the conflict side backed by the
// highest-priority rule (the "more reliable source"); ties go to the
// insertion.
func ReliabilityCritic() Critic {
	return CriticFunc{CriticName: "reliability", Fn: func(in *core.SelectInput) (core.Decision, error) {
		best := func(gs []core.Grounding) int {
			m := int(^uint(0)>>1) * -1
			for _, g := range gs {
				if p := in.Program.Rules[g.Rule].Priority; p > m {
					m = p
				}
			}
			return m
		}
		if best(in.Conflict.Ins) >= best(in.Conflict.Del) {
			return core.DecideInsert, nil
		}
		return core.DecideDelete, nil
	}}
}

// MajorityCritic votes with the larger conflict side: the atom more
// rules "want" wins; ties go to deletion (the safer action for
// constraint-style rules).
func MajorityCritic() Critic {
	return CriticFunc{CriticName: "majority", Fn: func(in *core.SelectInput) (core.Decision, error) {
		if len(in.Conflict.Ins) > len(in.Conflict.Del) {
			return core.DecideInsert, nil
		}
		return core.DecideDelete, nil
	}}
}

// StandardPanel is a ready-made three-critic panel (recency,
// reliability, conservative) for the Voting strategy.
func StandardPanel() []Critic {
	return []Critic{RecencyCritic(), ReliabilityCritic(), ConservativeCritic()}
}
