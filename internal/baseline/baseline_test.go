package baseline

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

func setup(t *testing.T, progSrc, dbSrc string) (*core.Universe, *core.Program, *core.Database) {
	t.Helper()
	u := core.NewUniverse()
	p, err := parser.ParseProgram(u, "", progSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := parser.ParseDatabase(u, "", dbSrc)
	if err != nil {
		t.Fatal(err)
	}
	return u, p, d
}

func render(u *core.Universe, d *core.Database) string { return renderDB(u, d) }

// §4.1 P2: the post-hoc strawman keeps the spurious s.
func TestPostHocP2GivesWrongResult(t *testing.T) {
	u, p, d := setup(t, `
		p -> +q.
		p -> -a.
		q -> +a.
		!a -> +r.
		a -> +s.
	`, `p.`)
	out, stats, err := PostHoc(context.Background(), u, p, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, out); got != "p, q, r, s" {
		t.Fatalf("post-hoc P2 = {%s}, want the paper's wrong {p, q, r, s}", got)
	}
	if stats.ConflictAtoms != 1 {
		t.Fatalf("conflict atoms = %d", stats.ConflictAtoms)
	}
}

// §4.1 P3: the post-hoc strawman loses a (false conflict).
func TestPostHocP3GivesWrongResult(t *testing.T) {
	u, p, d := setup(t, `
		p -> +q.
		p -> -q.
		q -> +a.
		q -> -a.
		p -> +a.
	`, `p.`)
	out, stats, err := PostHoc(context.Background(), u, p, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, out); got != "p" {
		t.Fatalf("post-hoc P3 = {%s}, want the paper's wrong {p}", got)
	}
	if stats.ConflictAtoms != 2 {
		t.Fatalf("conflict atoms = %d", stats.ConflictAtoms)
	}
}

// On conflict-free programs, Inflationary, PostHoc and PARK agree.
func TestConflictFreeAgreement(t *testing.T) {
	progSrc := `
		edge(X, Y) -> +tc(X, Y).
		tc(X, Y), edge(Y, Z) -> +tc(X, Z).
		tc(X, X) -> +cyclic.
	`
	dbSrc := `edge(a, b). edge(b, c). edge(c, a).`

	u1, p1, d1 := setup(t, progSrc, dbSrc)
	infl, err := Inflationary(context.Background(), u1, p1, d1, nil)
	if err != nil {
		t.Fatal(err)
	}
	u2, p2, d2 := setup(t, progSrc, dbSrc)
	post, _, err := PostHoc(context.Background(), u2, p2, d2, nil)
	if err != nil {
		t.Fatal(err)
	}
	u3, p3, d3 := setup(t, progSrc, dbSrc)
	eng, err := core.NewEngine(u3, p3, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	park, err := eng.Run(context.Background(), d3, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := render(u1, infl), render(u2, post), render(u3, park.Output)
	if a != b || b != c {
		t.Fatalf("divergence:\ninflationary: {%s}\npost-hoc:     {%s}\npark:         {%s}", a, b, c)
	}
	if !strings.Contains(a, "cyclic") {
		t.Fatalf("recursion broken: {%s}", a)
	}
}

func TestInflationaryWithUpdates(t *testing.T) {
	u, p, d := setup(t, `q(X) -> +r(X).`, `p(a).`)
	ups, err := parser.ParseUpdates(u, "", `+q(b). -p(a).`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Inflationary(context.Background(), u, p, d, ups)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, out); got != "q(b), r(b)" {
		t.Fatalf("result = {%s}", got)
	}
}

func TestSequentialDeterministicOrder(t *testing.T) {
	// Two rules race to set a flag; deterministic order fires rule 1
	// first, and its insertion disables rule 2 (stable outcome).
	u, p, d := setup(t, `
		p, !b -> +a.
		p, !a -> +b.
	`, `p.`)
	s := &Sequential{}
	out, firings, err := s.Run(context.Background(), u, p, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, out); got != "a, p" {
		t.Fatalf("result = {%s}", got)
	}
	if firings != 1 {
		t.Fatalf("firings = %d", firings)
	}
}

// The defining defect: sequential results depend on the firing order.
func TestSequentialIsAmbiguous(t *testing.T) {
	u, p, d := setup(t, `
		p, !b -> +a.
		p, !a -> +b.
	`, `p.`)
	results, nonTerm, err := DistinctResults(context.Background(), u, p, d, nil, 40, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if nonTerm != 0 {
		t.Fatalf("unexpected non-termination: %d", nonTerm)
	}
	if len(results) < 2 {
		t.Fatalf("expected order-dependent results, got %v", results)
	}
}

// The second defect: sequential firing need not terminate.
func TestSequentialNonTermination(t *testing.T) {
	u, p, d := setup(t, `
		p, !a -> +a.
		a -> -a.
	`, `p.`)
	s := &Sequential{MaxFirings: 500}
	_, _, err := s.Run(context.Background(), u, p, d, nil)
	if !errors.Is(err, ErrNonTermination) {
		t.Fatalf("err = %v, want ErrNonTermination", err)
	}
	// PARK terminates on the same program (inertia suppresses the
	// flip-flop pair).
	u2, p2, d2 := setup(t, `
		p, !a -> +a.
		a -> -a.
	`, `p.`)
	eng, err := core.NewEngine(u2, p2, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), d2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u2, res.Output); got != "p" {
		t.Fatalf("PARK on flip-flop = {%s}", got)
	}
}

func TestSequentialRejectsEventLiterals(t *testing.T) {
	u, p, d := setup(t, `+q(X) -> +r(X).`, ``)
	s := &Sequential{}
	if _, _, err := s.Run(context.Background(), u, p, d, nil); err == nil {
		t.Fatal("event literal program accepted")
	}
}

func TestSequentialAppliesUpdatesFirst(t *testing.T) {
	u, p, d := setup(t, `q(X) -> +r(X).`, `p(a).`)
	ups, err := parser.ParseUpdates(u, "", `+q(b). -p(a).`)
	if err != nil {
		t.Fatal(err)
	}
	s := &Sequential{}
	out, _, err := s.Run(context.Background(), u, p, d, ups)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, out); got != "q(b), r(b)" {
		t.Fatalf("result = {%s}", got)
	}
}

func TestContextCancellation(t *testing.T) {
	u, p, d := setup(t, `p -> +q.`, `p.`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := PostHoc(ctx, u, p, d, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("PostHoc err = %v", err)
	}
	s := &Sequential{}
	if _, _, err := s.Run(ctx, u, p, d, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sequential err = %v", err)
	}
}
