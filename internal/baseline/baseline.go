// Package baseline implements the alternative active-rule semantics
// that the paper argues against, for comparison with PARK:
//
//   - PostHoc: the §4.1 strawman — run the inflationary fixpoint
//     "stubbornly", ignoring conflicts, then eliminate conflicting
//     marked pairs at the end. The paper's P2 and P3 show this gives
//     wrong results (experiments E2/E3, B4).
//   - Inflationary: the plain inflationary fixpoint of Kolaitis and
//     Papadimitriou applied to active rules, with no conflict handling
//     at all (minus marks simply win at incorporation time). On
//     conflict-free programs it coincides with PARK, which is the
//     compatibility requirement of §3 ("Basic Inference Engine").
//   - Sequential: rule-instance-at-a-time firing with immediate update
//     visibility, in the style of classic production systems. Its
//     result depends on the firing order and it need not terminate —
//     the two defects the §3 requirements exclude (experiment B8).
package baseline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
)

// ErrNonTermination is returned by Sequential when the firing limit
// is exhausted, which for this semantics indicates a (possible)
// infinite insert/delete loop.
var ErrNonTermination = errors.New("baseline: sequential semantics exceeded its firing limit (non-termination?)")

// withUpdates forms P_U.
func withUpdates(u *core.Universe, p *core.Program, updates []core.Update) *core.Program {
	if len(updates) == 0 {
		return p
	}
	return &core.Program{Rules: append(append([]core.Rule(nil), p.Rules...), core.UpdateRules(u, updates)...)}
}

// fixpoint runs the inflationary fixpoint of Γ_{P,∅} over D ignoring
// consistency: every derived mark is added, even when the opposite
// mark is already present.
func fixpoint(ctx context.Context, u *core.Universe, p *core.Program, d *core.Database) (*core.Interp, error) {
	in := core.NewInterp(u, d)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed := false
		for _, dv := range core.GammaDerivations(in, p, nil) {
			if dv.Op == core.OpInsert {
				if !in.HasPlus(dv.Atom) {
					in.AddPlus(dv.Atom)
					changed = true
				}
			} else {
				if !in.HasMinus(dv.Atom) {
					in.AddMinus(dv.Atom)
					changed = true
				}
			}
		}
		if !changed {
			return in, nil
		}
	}
}

// PostHocStats reports what post-hoc elimination removed.
type PostHocStats struct {
	// ConflictAtoms is the number of atoms whose +/- pair was
	// eliminated.
	ConflictAtoms int
	// Steps is the number of fixpoint iterations.
	Steps int
}

// PostHoc computes the §4.1 strawman semantics: inflationary fixpoint
// ignoring conflicts, then elimination of every +a/-a pair, then
// incorporation. On P2 it returns the (wrong) {p, q, r, s}; on P3 the
// (wrong) {p}.
func PostHoc(ctx context.Context, u *core.Universe, p *core.Program, d *core.Database, updates []core.Update) (*core.Database, PostHocStats, error) {
	pu := withUpdates(u, p, updates)
	if err := pu.Validate(u); err != nil {
		return nil, PostHocStats{}, err
	}
	in, err := fixpoint(ctx, u, pu, d)
	if err != nil {
		return nil, PostHocStats{}, err
	}
	var stats PostHocStats
	conflicted := make(map[core.AID]bool)
	for _, id := range in.PlusAtoms() {
		if in.HasMinus(id) {
			conflicted[id] = true
		}
	}
	stats.ConflictAtoms = len(conflicted)
	// incorp with the conflicting pairs eliminated: such atoms keep
	// their original status.
	out := core.NewDatabase()
	for _, id := range in.BaseAtoms() {
		if in.HasMinus(id) && !conflicted[id] {
			continue
		}
		out.Add(id)
	}
	for _, id := range in.PlusAtoms() {
		if !conflicted[id] {
			out.Add(id)
		}
	}
	return out, stats, nil
}

// Inflationary computes the plain inflationary fixpoint and
// incorporates all marks (an atom carrying both marks ends up
// deleted, following the incorp definition literally). For
// conflict-free programs this equals PARK(P, D, U).
func Inflationary(ctx context.Context, u *core.Universe, p *core.Program, d *core.Database, updates []core.Update) (*core.Database, error) {
	pu := withUpdates(u, p, updates)
	if err := pu.Validate(u); err != nil {
		return nil, err
	}
	in, err := fixpoint(ctx, u, pu, d)
	if err != nil {
		return nil, err
	}
	return in.Incorp(), nil
}

// Sequential is the rule-at-a-time production-system semantics: at
// every step one applicable rule instance whose action would change
// the database is chosen and applied immediately (real insertion or
// deletion, visible to all subsequent matching).
//
// Event literals are not supported (they presuppose the marked
// interpretation of the PARK semantics); programs containing them are
// rejected. Transaction updates are applied to the database before
// firing starts.
type Sequential struct {
	// Seed selects the firing order: every step picks uniformly among
	// the applicable instances. Seed 0 means "first applicable
	// instance in deterministic order" (rule index, then grounding
	// key).
	Seed int64
	// MaxFirings bounds the run; 0 means 100000. Exceeding it returns
	// ErrNonTermination.
	MaxFirings int
}

// Run executes the sequential semantics and returns the final
// database and the number of firings.
func (s *Sequential) Run(ctx context.Context, u *core.Universe, p *core.Program, d *core.Database, updates []core.Update) (*core.Database, int, error) {
	for _, r := range p.Rules {
		for _, lit := range r.Body {
			if lit.Kind == core.LitEvIns || lit.Kind == core.LitEvDel {
				return nil, 0, fmt.Errorf("baseline: sequential semantics does not support event literals (rule %s)", r.String(u))
			}
		}
	}
	if err := p.Validate(u); err != nil {
		return nil, 0, err
	}
	db := d.Clone()
	for _, up := range updates {
		if up.Op == core.OpInsert {
			db.Add(up.Atom)
		} else {
			db.Remove(up.Atom)
		}
	}
	limit := s.MaxFirings
	if limit == 0 {
		limit = 100000
	}
	var rng *rand.Rand
	if s.Seed != 0 {
		rng = rand.New(rand.NewSource(s.Seed))
	}
	firings := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, firings, err
		}
		// Evaluate rule bodies against the current database: a fresh
		// unmarked interpretation gives exactly classical validity.
		in := core.NewInterp(u, db)
		derivs := core.GammaDerivations(in, p, nil)
		applicable := derivs[:0]
		for _, dv := range derivs {
			changes := (dv.Op == core.OpInsert && !db.Contains(dv.Atom)) ||
				(dv.Op == core.OpDelete && db.Contains(dv.Atom))
			if changes {
				applicable = append(applicable, dv)
			}
		}
		if len(applicable) == 0 {
			return db, firings, nil
		}
		sort.Slice(applicable, func(i, j int) bool {
			if applicable[i].Grounding.Rule != applicable[j].Grounding.Rule {
				return applicable[i].Grounding.Rule < applicable[j].Grounding.Rule
			}
			return applicable[i].Grounding.Key() < applicable[j].Grounding.Key()
		})
		pick := applicable[0]
		if rng != nil {
			pick = applicable[rng.Intn(len(applicable))]
		}
		if pick.Op == core.OpInsert {
			db.Add(pick.Atom)
		} else {
			db.Remove(pick.Atom)
		}
		firings++
		if firings > limit {
			return nil, firings, ErrNonTermination
		}
	}
}

// DistinctResults runs the sequential semantics with n different
// seeds and returns the set of distinct result databases (rendered as
// sorted atom strings) — the measurement behind experiment B8. Runs
// that do not terminate are counted separately.
func DistinctResults(ctx context.Context, u *core.Universe, p *core.Program, d *core.Database, updates []core.Update, n int, maxFirings int) (results map[string]int, nonTerminating int, err error) {
	results = make(map[string]int)
	for seed := int64(1); seed <= int64(n); seed++ {
		s := &Sequential{Seed: seed, MaxFirings: maxFirings}
		out, _, rerr := s.Run(ctx, u, p, d, updates)
		if errors.Is(rerr, ErrNonTermination) {
			nonTerminating++
			continue
		}
		if rerr != nil {
			return nil, 0, rerr
		}
		results[renderDB(u, out)]++
	}
	return results, nonTerminating, nil
}

func renderDB(u *core.Universe, d *core.Database) string {
	ids := append([]core.AID(nil), d.Atoms()...)
	u.SortAtoms(ids)
	s := ""
	for i, id := range ids {
		if i > 0 {
			s += ", "
		}
		s += u.AtomString(id)
	}
	return s
}
