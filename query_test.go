package park_test

import (
	"context"
	"testing"

	park "repro"
)

func TestQueryFacade(t *testing.T) {
	u := park.NewUniverse()
	db, err := park.ParseDatabase(u, "", `
		emp(tom). emp(ann). emp(bob).
		active(ann). active(bob).
		payroll(tom, 100). payroll(ann, 120). payroll(bob, 120).
	`)
	if err != nil {
		t.Fatal(err)
	}

	res, err := park.Query(u, db, `emp(X), !active(X)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "X=tom" {
		t.Fatalf("inactive emps = %q", res.String())
	}

	// Anonymous variables are projected away and rows deduplicated.
	res, err = park.Query(u, db, `payroll(_, S)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "S=100 | S=120" {
		t.Fatalf("salaries = %q", res.String())
	}

	// Ground queries answer yes/no.
	res, err = park.Query(u, db, `emp(tom), active(ann)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "yes" {
		t.Fatalf("ground query = %q", res.String())
	}
	res, err = park.Query(u, db, `active(tom)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "no" || res.Len() != 0 {
		t.Fatalf("false ground query = %q", res.String())
	}

	// Rows are sorted.
	res, err = park.Query(u, db, `emp(X), active(X)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "X=ann | X=bob" {
		t.Fatalf("sorted rows = %q", res.String())
	}
}

func TestQueryAgainstParkResult(t *testing.T) {
	// End-to-end: run PARK, then query the result state.
	res, u, err := park.Eval(context.Background(), `
		emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
	`, `
		emp(tom). emp(ann). active(ann).
		payroll(tom, 100). payroll(ann, 120).
	`, ``, park.Inertia(), park.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := park.Query(u, res.Output, `payroll(X, _)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "X=ann" {
		t.Fatalf("post-run query = %q", q.String())
	}
}

// ResolveOne (the §4.2 "block only part of the conflicts" variant)
// must reach the same result with more phases and no larger blocked
// set.
func TestResolveOneVariant(t *testing.T) {
	prog := `
		rule r1: p(X), p(Y) -> +q(X, Y).
		rule r2: q(X, X) -> -q(X, X).
		rule r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
	`
	db := `p(a). p(b). p(c).`
	strat := park.StrategyFunc{StrategyName: "graph", Fn: func(in *park.SelectInput) (park.Decision, error) {
		args := in.Universe.AtomArgs(in.Conflict.Atom)
		x, y := in.Universe.Syms.Name(args[0]), in.Universe.Syms.Name(args[1])
		if x == y || (x == "a" && y == "c") || (x == "c" && y == "a") {
			return park.DecideDelete, nil
		}
		return park.DecideInsert, nil
	}}

	all, uAll, err := park.Eval(context.Background(), prog, db, ``, strat, park.Options{})
	if err != nil {
		t.Fatal(err)
	}
	one, uOne, err := park.Eval(context.Background(), prog, db, ``, strat, park.Options{ResolveOne: true})
	if err != nil {
		t.Fatal(err)
	}
	if park.FormatDatabase(uAll, all.Output) != park.FormatDatabase(uOne, one.Output) {
		t.Fatalf("results diverge: %s vs %s",
			park.FormatDatabase(uAll, all.Output), park.FormatDatabase(uOne, one.Output))
	}
	if one.Stats.Phases <= all.Stats.Phases {
		t.Fatalf("ResolveOne phases = %d, want more than %d", one.Stats.Phases, all.Stats.Phases)
	}
	if one.Stats.BlockedInstances > all.Stats.BlockedInstances {
		t.Fatalf("ResolveOne blocked %d > %d", one.Stats.BlockedInstances, all.Stats.BlockedInstances)
	}
}

func TestDiff(t *testing.T) {
	u := park.NewUniverse()
	before, err := park.ParseDatabase(u, "", `p(a). p(b).`)
	if err != nil {
		t.Fatal(err)
	}
	after, err := park.ParseDatabase(u, "", `p(b). p(c).`)
	if err != nil {
		t.Fatal(err)
	}
	ups := park.Diff(before, after)
	if got := park.FormatUpdates(u, ups); got != "{+p(c), -p(a)}" {
		t.Fatalf("diff = %s", got)
	}
	// Applying the diff to before reproduces after.
	eng, err := park.NewEngine(u, &park.Program{}, nil, park.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), before, ups)
	if err != nil {
		t.Fatal(err)
	}
	if park.FormatDatabase(u, res.Output) != park.FormatDatabase(u, after) {
		t.Fatalf("diff application: %s != %s", park.FormatDatabase(u, res.Output), park.FormatDatabase(u, after))
	}
	if len(park.Diff(after, after)) != 0 {
		t.Fatal("self-diff not empty")
	}
}

func TestQueryWithViews(t *testing.T) {
	u := park.NewUniverse()
	db, err := park.ParseDatabase(u, "", `
		edge(a, b). edge(b, c). edge(c, d).
	`)
	if err != nil {
		t.Fatal(err)
	}
	views := `
		edge(X, Y) -> +tc(X, Y).
		tc(X, Y), edge(Y, Z) -> +tc(X, Z).
	`
	res, err := park.QueryWithViews(context.Background(), u, db, views, `tc(a, X)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "X=b | X=c | X=d" {
		t.Fatalf("view query = %q", res.String())
	}
	// The base database is untouched (views are virtual).
	if db.Len() != 3 {
		t.Fatalf("base db mutated: %d facts", db.Len())
	}
	// Deletion rules rejected.
	if _, err := park.QueryWithViews(context.Background(), u, db, `edge(X, Y) -> -edge(X, Y).`, `edge(a, X)`); err == nil {
		t.Fatal("deleting view accepted")
	}
	// Event literals rejected.
	if _, err := park.QueryWithViews(context.Background(), u, db, `+edge(X, Y) -> +seen(X).`, `seen(X)`); err == nil {
		t.Fatal("event view accepted")
	}
}
