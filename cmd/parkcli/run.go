package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	park "repro"
)

// parseStrategy builds a strategy from its CLI spelling.
func parseStrategy(spec string) (park.Strategy, error) {
	if inner, ok := strings.CutPrefix(spec, "protect+"); ok {
		s, err := parseStrategy(inner)
		if err != nil {
			return nil, err
		}
		return park.ProtectUpdates(s), nil
	}
	if seedStr, ok := strings.CutPrefix(spec, "random="); ok {
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad random seed %q", seedStr)
		}
		return park.Random(seed), nil
	}
	switch spec {
	case "", "inertia":
		return park.Inertia(), nil
	case "priority":
		return park.Priority(park.Inertia()), nil
	case "specificity":
		return park.Specificity(), nil
	case "interactive":
		return park.Interactive(os.Stdin, os.Stderr), nil
	case "random":
		return park.Random(1), nil
	}
	return nil, fmt.Errorf("unknown strategy %q (want inertia, priority, specificity, interactive, random=<seed>, protect+<s>)", spec)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		programPath = fs.String("program", "", "program file (rule language)")
		triggerPath = fs.String("triggers", "", "program file (trigger DDL); alternative to -program")
		dbPath      = fs.String("db", "", "database file (required)")
		updPath     = fs.String("updates", "", "transaction updates file")
		strategy    = fs.String("strategy", "inertia", "conflict resolution strategy")
		trace       = fs.Bool("trace", false, "print evaluation trace")
		stats       = fs.Bool("stats", false, "print statistics")
		naive       = fs.Bool("naive", false, "disable semi-naive evaluation")
		noindex     = fs.Bool("noindex", false, "disable indexed matching")
		strict      = fs.Bool("strict", false, "paper-literal conflict definition")
		parallel    = fs.Int("parallel", 0, "worker goroutines for full steps (0 = sequential)")
		explain     = fs.String("explain", "", "explain a ground atom of the result, e.g. 'q(a)'")
		format      = fs.String("format", "text", "output format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*programPath == "") == (*triggerPath == "") || *dbPath == "" {
		return fmt.Errorf("run requires -db and exactly one of -program / -triggers")
	}
	u := park.NewUniverse()
	var prog *park.Program
	var err error
	if *programPath != "" {
		prog, err = loadProgram(u, *programPath)
	} else {
		var src []byte
		if src, err = os.ReadFile(*triggerPath); err == nil {
			prog, err = park.ParseTriggers(u, *triggerPath, string(src))
		}
	}
	if err != nil {
		return err
	}
	dbSrc, err := os.ReadFile(*dbPath)
	if err != nil {
		return err
	}
	db, err := park.ParseDatabase(u, *dbPath, string(dbSrc))
	if err != nil {
		return err
	}
	var ups []park.Update
	if *updPath != "" {
		src, err := os.ReadFile(*updPath)
		if err != nil {
			return err
		}
		if ups, err = park.ParseUpdates(u, *updPath, string(src)); err != nil {
			return err
		}
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	opts := park.Options{
		Naive:           *naive,
		NoIndex:         *noindex,
		StrictConflicts: *strict,
		Parallel:        *parallel,
		Explain:         *explain != "",
	}
	if *trace {
		opts.Tracer = &park.TextTracer{W: os.Stderr, U: u, P: prog, Verbose: true}
	}
	eng, err := park.NewEngine(u, prog, strat, opts)
	if err != nil {
		return err
	}
	res, err := eng.Run(context.Background(), db, ups)
	if err != nil {
		return err
	}
	switch *format {
	case "", "text":
		printResult(u, res, *stats)
	case "json":
		if err := printResultJSON(u, res); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	if *explain != "" {
		if err := printExplanation(u, res, *explain); err != nil {
			return err
		}
	}
	return nil
}

// printExplanation parses an atom in rule-language syntax and prints
// its derivation tree from the run's explainer.
func printExplanation(u *park.Universe, res *park.Result, atomText string) error {
	id, err := parseGroundAtom(u, atomText)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "explanation:")
	fmt.Fprint(os.Stderr, res.Explainer.Format(res.Explainer.Explain(id)))
	return nil
}

// parseGroundAtom interns a ground atom written in rule-language
// syntax ("q(a, b)" or "flag").
func parseGroundAtom(u *park.Universe, text string) (park.AID, error) {
	db, err := park.ParseDatabase(u, "atom", text+".")
	if err != nil {
		return -1, fmt.Errorf("bad atom %q: %w", text, err)
	}
	if db.Len() != 1 {
		return -1, fmt.Errorf("%q is not a single ground atom", text)
	}
	return db.Atoms()[0], nil
}

// runJSON is the -format json shape of a run result. Stats carries
// the extended RunStats (Γ-step split, groundings, shards, SELECT
// outcomes, per-phase wall time); the embedded Stats fields are
// inlined, so pre-existing keys are unchanged.
type runJSON struct {
	Facts     []string       `json:"facts"`
	Stats     park.RunStats  `json:"stats"`
	Conflicts []conflictJSON `json:"conflicts,omitempty"`
}

type conflictJSON struct {
	Atom     string `json:"atom"`
	Decision string `json:"decision"`
}

func printResultJSON(u *park.Universe, res *park.Result) error {
	ids := append([]park.AID(nil), res.Output.Atoms()...)
	u.SortAtoms(ids)
	out := runJSON{Stats: res.RunStats, Facts: make([]string, len(ids))}
	for i, id := range ids {
		out.Facts[i] = u.AtomString(id)
	}
	for _, rc := range res.Conflicts {
		out.Conflicts = append(out.Conflicts, conflictJSON{
			Atom:     u.AtomString(rc.Conflict.Atom),
			Decision: rc.Decision.String(),
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func loadProgram(u *park.Universe, path string) (*park.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return park.ParseProgram(u, path, string(src))
}

func printResult(u *park.Universe, res *park.Result, stats bool) {
	ids := append([]park.AID(nil), res.Output.Atoms()...)
	u.SortAtoms(ids)
	for _, id := range ids {
		fmt.Printf("%s.\n", u.AtomString(id))
	}
	if stats {
		rs := res.RunStats
		fmt.Fprintf(os.Stderr, "phases=%d steps=%d conflicts=%d stale=%d blocked=%d derivations=%d new-facts=%d\n",
			rs.Phases, rs.Steps, rs.Conflicts, rs.StaleConflicts,
			rs.BlockedInstances, rs.Derivations, rs.NewFacts)
		fmt.Fprintf(os.Stderr, "restarts=%d gamma-full=%d gamma-delta=%d groundings=%d shards=%d select-insert=%d select-delete=%d wall=%v\n",
			rs.Restarts, rs.FullSteps, rs.DeltaSteps, rs.Groundings, rs.Shards,
			rs.InsertDecisions, rs.DeleteDecisions, rs.Wall.Round(time.Microsecond))
	}
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dbPath := fs.String("db", "", "database file (required)")
	q := fs.String("q", "", "conjunctive query (required)")
	format := fs.String("format", "text", "output format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *q == "" {
		return fmt.Errorf("query requires -db and -q")
	}
	u := park.NewUniverse()
	src, err := os.ReadFile(*dbPath)
	if err != nil {
		return err
	}
	db, err := park.ParseDatabase(u, *dbPath, string(src))
	if err != nil {
		return err
	}
	res, err := park.Query(u, db, *q)
	if err != nil {
		return err
	}
	switch *format {
	case "", "text":
		fmt.Println(res)
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	programPath := fs.String("program", "", "program file (rule language)")
	triggerPath := fs.String("triggers", "", "program file (trigger DDL)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*programPath == "") == (*triggerPath == "") {
		return fmt.Errorf("check requires exactly one of -program / -triggers")
	}
	u := park.NewUniverse()
	var prog *park.Program
	var err error
	if *programPath != "" {
		prog, err = loadProgram(u, *programPath)
	} else {
		var src []byte
		if src, err = os.ReadFile(*triggerPath); err == nil {
			prog, err = park.ParseTriggers(u, *triggerPath, string(src))
		}
	}
	if err != nil {
		return err
	}
	rep := park.Analyze(u, prog)
	fmt.Printf("rules: %d\n", len(prog.Rules))
	if rep.ConflictFree() {
		fmt.Println("conflict potential: none (PARK coincides with the inflationary fixpoint)")
	} else {
		names := make([]string, len(rep.ConflictPredicates))
		for i, s := range rep.ConflictPredicates {
			names[i] = u.Syms.Name(s)
		}
		fmt.Printf("conflict potential: %s\n", strings.Join(names, ", "))
	}
	for _, pair := range rep.Pairs {
		fmt.Printf("conflict pair: %s (insert) vs %s (delete) on %s\n",
			prog.RuleLabel(pair.Insert), prog.RuleLabel(pair.Delete), pair.Example)
	}
	fmt.Printf("recursive: %v\n", rep.Recursive)
	fmt.Printf("uses events: %v\n", rep.UsesEvents)
	if rep.Stratified {
		fmt.Printf("stratified: yes (%d strata)\n", len(rep.Strata))
	} else {
		fmt.Println("stratified: no (recursion through negation)")
	}
	for _, wmsg := range rep.Warnings {
		fmt.Printf("warning: %s\n", wmsg)
	}
	return nil
}
