package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/server"
)

// cmdRules inspects the per-rule profiler of a running parkd:
//
//	parkcli rules top [-url U] [-n 20] [-json]
//
// Rules are ranked by cumulative match cost (the server's order), so
// the top rows are where evaluation time goes — the candidates for
// rewriting or for a future discrimination-network match.
func cmdRules(args []string) error {
	if len(args) < 1 || args[0] != "top" {
		return fmt.Errorf("usage: parkcli rules top [-url U] [-n N] [-json]")
	}
	fs := flag.NewFlagSet("rules top", flag.ExitOnError)
	url := fs.String("url", "http://localhost:7474", "parkd base URL")
	n := fs.Int("n", 20, "show the N most expensive rules (0 = all)")
	asJSON := fs.Bool("json", false, "print the raw JSON instead of the table")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	c := &server.Client{BaseURL: *url}
	resp, err := c.RuleStats(context.Background())
	if err != nil {
		return err
	}
	return rulesTop(resp, *n, *asJSON, os.Stdout)
}

// rulesTop renders the profile table.
func rulesTop(resp *server.RuleStatsResponse, n int, asJSON bool, w io.Writer) error {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}
	if len(resp.Rules) == 0 {
		fmt.Fprintln(w, "no transactions profiled yet")
		return nil
	}
	rules := resp.Rules
	if n > 0 && len(rules) > n {
		rules = rules[:n]
	}
	fmt.Fprintf(w, "%d transactions profiled\n", resp.Txns)
	fmt.Fprintf(w, "%-28s  %6s  %10s  %8s  %10s  %5s  %6s  %7s\n",
		"RULE", "TXNS", "GROUNDINGS", "FIRES", "MATCH", "WINS", "LOSSES", "BLOCKED")
	for _, r := range rules {
		fmt.Fprintf(w, "%-28s  %6d  %10d  %8d  %10s  %5d  %6d  %7d\n",
			r.Rule, r.Txns, r.Groundings, r.Fires,
			time.Duration(r.MatchNanos).Round(time.Microsecond),
			r.ConflictWins, r.ConflictLosses, r.Blocked)
	}
	if n > 0 && len(resp.Rules) > n {
		fmt.Fprintf(w, "(%d more rules; -n 0 shows all)\n", len(resp.Rules)-n)
	}
	return nil
}

// cmdCluster shows the aggregated replica-set view of a running
// parkd member:
//
//	parkcli cluster status [-url U] [-json]
//
// Any member answers: it fans out to its peers and merges their
// health and replication status.
func cmdCluster(args []string) error {
	if len(args) < 1 || args[0] != "status" {
		return fmt.Errorf("usage: parkcli cluster status [-url U] [-json]")
	}
	fs := flag.NewFlagSet("cluster status", flag.ExitOnError)
	url := fs.String("url", "http://localhost:7474", "base URL of any replica-set member")
	asJSON := fs.Bool("json", false, "print the raw JSON instead of the table")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	c := &server.Client{BaseURL: *url}
	resp, err := c.ClusterStatus(context.Background())
	if err != nil {
		return err
	}
	return clusterStatus(resp, *asJSON, os.Stdout)
}

// clusterStatus renders the merged replica-set table.
func clusterStatus(resp *server.ClusterResponse, asJSON bool, w io.Writer) error {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}
	switch {
	case resp.LeaderAgreement:
		fmt.Fprintf(w, "leader: %s (%s), epoch %d", resp.LeaderID, resp.LeaderURL, resp.MaxEpoch)
	default:
		fmt.Fprintf(w, "leader: DISAGREEMENT or none known (max epoch %d)", resp.MaxEpoch)
	}
	if resp.Partial {
		fmt.Fprint(w, " — PARTIAL VIEW: some members unreachable")
	}
	fmt.Fprintf(w, "  [reported by %s]\n", resp.ReportedBy)
	fmt.Fprintf(w, "%-10s  %-10s  %6s  %6s  %8s  %-10s  %s\n",
		"MEMBER", "ROLE", "EPOCH", "FENCE", "APPLIED", "LEADER", "FLAGS")
	for _, m := range resp.Members {
		if !m.Reachable {
			fmt.Fprintf(w, "%-10s  %-10s  %6s  %6s  %8s  %-10s  %s\n",
				m.ID, "?", "?", "?", "?", "?", "UNREACHABLE: "+m.Error)
			continue
		}
		var flags []string
		if m.Self {
			flags = append(flags, "self")
		}
		if m.Suspended {
			flags = append(flags, "SUSPENDED")
		}
		if m.Degraded {
			flags = append(flags, "DEGRADED")
		}
		if m.Stale {
			flags = append(flags, "STALE")
		}
		if m.LagSeq > 0 {
			flags = append(flags, fmt.Sprintf("lag=%d", m.LagSeq))
		}
		fmt.Fprintf(w, "%-10s  %-10s  %6d  %6d  %8d  %-10s  %s\n",
			m.ID, m.Role, m.Epoch, m.FenceEpoch, m.AppliedSeq, m.LeaderID,
			strings.Join(flags, ","))
	}
	return nil
}

// cmdEvents tails the lifecycle event journal of a running parkd:
//
//	parkcli events [-url U] [-since N] [-type t1,t2] [-limit K] [-json]
func cmdEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	url := fs.String("url", "http://localhost:7474", "parkd base URL")
	since := fs.Int64("since", 0, "only events with journal sequence > N")
	types := fs.String("type", "", "comma-separated event types (e.g. campaign-won,leader-demoted)")
	limit := fs.Int("limit", 0, "at most K events (0 = all retained)")
	asJSON := fs.Bool("json", false, "print the raw JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ts []string
	if *types != "" {
		ts = strings.Split(*types, ",")
	}
	c := &server.Client{BaseURL: *url}
	resp, err := c.Events(context.Background(), *since, ts, *limit)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}
	if resp.Missed > 0 {
		fmt.Printf("(%d events after seq %d already evicted)\n", resp.Missed, *since)
	}
	for _, e := range resp.Events {
		detail := e.Detail
		if e.Peer != "" {
			detail = strings.TrimSpace("peer=" + e.Peer + " " + detail)
		}
		fmt.Printf("%6d  %s  %-18s  epoch=%-3d seq=%-5d %s\n",
			e.Seq, e.Time.Format(time.RFC3339), e.Type, e.Epoch, e.StoreSeq, detail)
	}
	return nil
}
