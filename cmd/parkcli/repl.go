package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	park "repro"
)

// repl is an interactive session: rules, facts and updates are typed
// (or :load-ed) into a pending unit; :run evaluates PARK over the
// accumulated state and makes the result the new database.
type repl struct {
	in  *bufio.Scanner
	out io.Writer

	u        *park.Universe
	program  []string // rule sources, kept as text for re-parsing
	db       *park.Database
	updates  []park.Update
	strategy park.Strategy
	trace    bool
	last     *park.Result // most recent :run, for :why
}

// newReplForTest builds a repl over explicit streams (used by tests;
// cmdRepl wires os.Stdin/os.Stdout).
func newReplForTest(in io.Reader, out io.Writer) *repl {
	return &repl{
		in:       bufio.NewScanner(in),
		out:      out,
		u:        park.NewUniverse(),
		db:       park.NewDatabase(),
		strategy: park.Inertia(),
	}
}

func cmdRepl(args []string) error {
	fs := flag.NewFlagSet("repl", flag.ExitOnError)
	strategy := fs.String("strategy", "inertia", "conflict resolution strategy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	r := &repl{
		in:       bufio.NewScanner(os.Stdin),
		out:      os.Stdout,
		u:        park.NewUniverse(),
		db:       park.NewDatabase(),
		strategy: strat,
	}
	return r.loop()
}

func (r *repl) loop() error {
	fmt.Fprintln(r.out, "park repl — type rules/facts/updates, :help for commands")
	for {
		fmt.Fprint(r.out, "park> ")
		if !r.in.Scan() {
			fmt.Fprintln(r.out)
			return r.in.Err()
		}
		line := strings.TrimSpace(r.in.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ":") {
			quit, err := r.command(line)
			if err != nil {
				fmt.Fprintf(r.out, "error: %v\n", err)
			}
			if quit {
				return nil
			}
			continue
		}
		if err := r.input(line); err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
		}
	}
}

// input parses one line of rules/facts/updates into the session.
func (r *repl) input(line string) error {
	unit, err := park.ParseUnit(r.u, "repl", line)
	if err != nil {
		return err
	}
	for i := range unit.Program.Rules {
		r.program = append(r.program, unit.Program.Rules[i].String(r.u)+".")
		fmt.Fprintf(r.out, "rule %d added\n", len(r.program))
	}
	for _, id := range unit.Database.Atoms() {
		if r.db.Add(id) {
			fmt.Fprintf(r.out, "fact %s added\n", r.u.AtomString(id))
		}
	}
	for _, up := range unit.Updates {
		r.updates = append(r.updates, up)
		fmt.Fprintf(r.out, "update %s%s pending\n", up.Op, r.u.AtomString(up.Atom))
	}
	return nil
}

func (r *repl) parseProgram() (*park.Program, error) {
	return park.ParseProgram(r.u, "repl", strings.Join(r.program, "\n"))
}

func (r *repl) command(line string) (quit bool, err error) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":help":
		fmt.Fprintln(r.out, `commands:
  :run            evaluate PARK(P, D, U); the result becomes the new D
  :db             show the current database
  :rules          show the current program
  :updates        show pending updates
  :check          static analysis of the program
  :trace          toggle evaluation tracing
  :why ATOM       explain an atom of the last :run result
  :load FILE      load rules/facts/updates from a file
  :clear          drop program, database and updates
  :quit           leave`)
	case ":quit", ":q", ":exit":
		return true, nil
	case ":db":
		fmt.Fprintln(r.out, park.FormatDatabase(r.u, r.db))
	case ":rules":
		for i, src := range r.program {
			fmt.Fprintf(r.out, "%2d: %s\n", i+1, src)
		}
	case ":updates":
		fmt.Fprintln(r.out, park.FormatUpdates(r.u, r.updates))
	case ":trace":
		r.trace = !r.trace
		fmt.Fprintf(r.out, "trace %v\n", r.trace)
	case ":why":
		if len(fields) != 2 {
			return false, fmt.Errorf(":why needs a ground atom, e.g. :why q(a)")
		}
		if r.last == nil || r.last.Explainer == nil {
			return false, fmt.Errorf("no result to explain; :run first")
		}
		id, err := parseGroundAtom(r.u, fields[1])
		if err != nil {
			return false, err
		}
		fmt.Fprint(r.out, r.last.Explainer.Format(r.last.Explainer.Explain(id)))
	case ":clear":
		r.program = nil
		r.db = park.NewDatabase()
		r.updates = nil
		fmt.Fprintln(r.out, "cleared")
	case ":load":
		if len(fields) != 2 {
			return false, fmt.Errorf(":load needs a file name")
		}
		src, err := os.ReadFile(fields[1])
		if err != nil {
			return false, err
		}
		return false, r.input(string(src))
	case ":check":
		prog, err := r.parseProgram()
		if err != nil {
			return false, err
		}
		rep := park.Analyze(r.u, prog)
		if rep.ConflictFree() {
			fmt.Fprintln(r.out, "conflict potential: none")
		} else {
			names := make([]string, len(rep.ConflictPredicates))
			for i, s := range rep.ConflictPredicates {
				names[i] = r.u.Syms.Name(s)
			}
			fmt.Fprintf(r.out, "conflict potential: %s\n", strings.Join(names, ", "))
		}
		for _, wmsg := range rep.Warnings {
			fmt.Fprintf(r.out, "warning: %s\n", wmsg)
		}
	case ":run":
		prog, err := r.parseProgram()
		if err != nil {
			return false, err
		}
		opts := park.Options{Explain: true}
		if r.trace {
			opts.Tracer = &park.TextTracer{W: r.out, U: r.u, P: prog, Verbose: true}
		}
		eng, err := park.NewEngine(r.u, prog, r.strategy, opts)
		if err != nil {
			return false, err
		}
		res, err := eng.Run(context.Background(), r.db, r.updates)
		if err != nil {
			return false, err
		}
		fmt.Fprintf(r.out, "result: %s\n", park.FormatDatabase(r.u, res.Output))
		fmt.Fprintf(r.out, "stats: phases=%d steps=%d conflicts=%d blocked=%d\n",
			res.Stats.Phases, res.Stats.Steps, res.Stats.Conflicts, res.Stats.BlockedInstances)
		r.db = res.Output
		r.updates = nil
		r.last = res
	default:
		return false, fmt.Errorf("unknown command %s (:help for help)", fields[0])
	}
	return false, nil
}
