// Command parkcli evaluates active-rule programs under the PARK
// semantics.
//
// Usage:
//
//	parkcli run -program rules.park -db data.park [-updates u.park] [flags]
//	parkcli check -program rules.park
//	parkcli txn trace <seq> [-url http://localhost:7474] [-json]
//	parkcli rules top [-url http://localhost:7474] [-n 20]
//	parkcli cluster status [-url http://localhost:7474]
//	parkcli events [-since N] [-type campaign-won,leader-demoted]
//	parkcli repl
//
// Flags for run:
//
//	-strategy S   conflict resolution: inertia (default), priority,
//	              specificity, interactive, random=<seed>,
//	              protect+<inner>
//	-trace        print the paper-style step-by-step trace
//	-stats        print evaluation statistics
//	-naive        disable semi-naive evaluation
//	-noindex      disable hash-indexed matching
//	-strict       use the paper's literal conflict definition
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "txn":
		err = cmdTxn(os.Args[2:])
	case "rules":
		err = cmdRules(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "events":
		err = cmdEvents(os.Args[2:])
	case "repl":
		err = cmdRepl(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "parkcli: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "parkcli: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `parkcli — PARK semantics for active rules

commands:
  run   -program FILE -db FILE [-updates FILE] [-strategy S] [-trace] [-stats]
        evaluate PARK(P, D, U) and print the result database
  check -program FILE | -triggers FILE
        static analysis: safety, conflict pairs, stratification, lints
  query -db FILE -q 'emp(X), !active(X)'
        run a conjunctive query against a database file
  watch -url http://localhost:7474
        stream committed transactions from a running parkd
  txn   trace <seq> | slow | list  [-url U] [-json]
        inspect the flight recorder: one txn's paper-style trace, the
        slow-transaction window, or the recent-trace window
  rules top [-url U] [-n N] [-json]
        per-rule profile of a running parkd, ranked by match cost
  cluster status [-url U] [-json]
        aggregated replica-set view from any member
  events [-url U] [-since N] [-type t1,t2] [-json]
        tail the lifecycle event journal (elections, fences, stalls)
  repl  interactive session`)
}
