package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	park "repro"
	"repro/internal/persist"
	"repro/internal/server"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseStrategy(t *testing.T) {
	for _, spec := range []string{"", "inertia", "priority", "specificity", "random", "random=42", "protect+inertia", "protect+priority"} {
		if _, err := parseStrategy(spec); err != nil {
			t.Fatalf("parseStrategy(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"bogus", "random=x", "protect+bogus"} {
		if _, err := parseStrategy(spec); err == nil {
			t.Fatalf("parseStrategy(%q) accepted", spec)
		}
	}
}

func TestCmdRun(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "rules.park", `
		emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
	`)
	db := writeFile(t, dir, "db.park", `
		emp(tom). payroll(tom, 100).
	`)
	if err := cmdRun([]string{"-program", prog, "-db", db, "-stats"}); err != nil {
		t.Fatal(err)
	}
	// With updates, strategy, trace, explain and engine options.
	ups := writeFile(t, dir, "ups.park", `+active(tom).`)
	if err := cmdRun([]string{
		"-program", prog, "-db", db, "-updates", ups,
		"-strategy", "priority", "-trace", "-naive", "-noindex", "-parallel", "2",
		"-explain", "payroll(tom, 100)",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRunErrors(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "rules.park", `p -> +q.`)
	db := writeFile(t, dir, "db.park", `p.`)
	if err := cmdRun(nil); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := cmdRun([]string{"-program", prog, "-db", filepath.Join(dir, "missing")}); err == nil {
		t.Fatal("missing db file accepted")
	}
	if err := cmdRun([]string{"-program", prog, "-db", db, "-strategy", "bogus"}); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	bad := writeFile(t, dir, "bad.park", `p(X) -> +q(Y).`)
	if err := cmdRun([]string{"-program", bad, "-db", db}); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("unsafe program err = %v", err)
	}
	if err := cmdRun([]string{"-program", prog, "-db", db, "-explain", "not an atom ("}); err == nil {
		t.Fatal("bad explain atom accepted")
	}
}

func TestCmdCheck(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "rules.park", `
		a(X) -> +f(X).
		b(X) -> -f(X).
	`)
	if err := cmdCheck([]string{"-program", prog}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheck(nil); err == nil {
		t.Fatal("missing -program accepted")
	}
}

func TestParseGroundAtom(t *testing.T) {
	u := park.NewUniverse()
	id, err := parseGroundAtom(u, "q(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if u.AtomString(id) != "q(a, b)" {
		t.Fatalf("round trip = %q", u.AtomString(id))
	}
	if _, err := parseGroundAtom(u, "q(X)"); err == nil {
		t.Fatal("variable accepted in ground atom")
	}
	if _, err := parseGroundAtom(u, "p(a). p(b)"); err == nil {
		t.Fatal("two atoms accepted")
	}
}

func TestReplSession(t *testing.T) {
	script := strings.Join([]string{
		"p(a).",
		"p(X) -> +q(X).",
		":rules",
		":db",
		":check",
		":run",
		":why q(a)",
		":updates",
		":trace",
		":clear",
		":db",
		":bogus",
		":quit",
	}, "\n") + "\n"
	var out strings.Builder
	r := newReplForTest(strings.NewReader(script), &out)
	if err := r.loop(); err != nil {
		t.Fatal(err)
	}
	o := out.String()
	for _, want := range []string{
		"rule 1 added",
		"fact p(a) added",
		"result: {p(a), q(a)}",
		"inserted by", // :why output
		"conflict potential: none",
		"cleared",
		"unknown command :bogus",
	} {
		if !strings.Contains(o, want) {
			t.Fatalf("repl output missing %q:\n%s", want, o)
		}
	}
}

func TestReplLoadFile(t *testing.T) {
	dir := t.TempDir()
	f := writeFile(t, dir, "unit.park", "p(a).\np(X) -> +q(X).\n")
	script := ":load " + f + "\n:run\n:quit\n"
	var out strings.Builder
	r := newReplForTest(strings.NewReader(script), &out)
	if err := r.loop(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "result: {p(a), q(a)}") {
		t.Fatalf("repl :load output:\n%s", out.String())
	}
}

func TestCmdQuery(t *testing.T) {
	dir := t.TempDir()
	db := writeFile(t, dir, "db.park", `emp(tom). emp(ann). active(ann).`)
	if err := cmdQuery([]string{"-db", db, "-q", `emp(X), !active(X)`}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-db", db}); err == nil {
		t.Fatal("missing -q accepted")
	}
	if err := cmdQuery([]string{"-db", db, "-q", `+emp(X)`}); err == nil {
		t.Fatal("event query accepted")
	}
}

func TestCmdRunTriggers(t *testing.T) {
	dir := t.TempDir()
	ddl := writeFile(t, dir, "ddl.sql", `CREATE RULE r WHEN p(X) DO INSERT q(X);`)
	db := writeFile(t, dir, "db.park", `p(a).`)
	if err := cmdRun([]string{"-triggers", ddl, "-db", db}); err != nil {
		t.Fatal(err)
	}
	prog := writeFile(t, dir, "rules.park", `p(X) -> +q(X).`)
	if err := cmdRun([]string{"-triggers", ddl, "-program", prog, "-db", db}); err == nil {
		t.Fatal("both -program and -triggers accepted")
	}
}

func TestCmdCheckTriggers(t *testing.T) {
	dir := t.TempDir()
	ddl := writeFile(t, dir, "ddl.sql", `
		CREATE TRIGGER keep AFTER INSERT ON hold(X) DO INSERT p(X);
		CREATE RULE drop WHEN q(X) DO DELETE p(X);
	`)
	if err := cmdCheck([]string{"-triggers", ddl}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheck([]string{}); err == nil {
		t.Fatal("no program accepted")
	}
}

// lockedBuilder lets the test poll the watch goroutine's output
// without racing its writes.
type lockedBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuilder) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuilder) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestWatchCommand(t *testing.T) {
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := server.New(store)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	out := &lockedBuilder{}
	done := make(chan error, 1)
	go func() { done <- watch(ctx, ts.URL, out) }()

	c := &server.Client{BaseURL: ts.URL}
	// The watcher connects asynchronously and events before the
	// subscription are (by design) not delivered, so keep committing
	// DISTINCT facts until one streams through.
	seen := false
	for i := 0; i < 200 && !seen; i++ {
		if _, err := c.Transact(ctx, fmt.Sprintf("+p(x%d).", i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		seen = strings.Contains(out.String(), "+ p(x")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatalf("no event streamed; watch output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "txn ") {
		t.Fatalf("watch output malformed:\n%s", out.String())
	}
}

func TestCmdRunJSON(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "rules.park", `p -> +a. p -> -a.`)
	db := writeFile(t, dir, "db.park", `p.`)
	if err := cmdRun([]string{"-program", prog, "-db", db, "-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-program", prog, "-db", db, "-format", "yaml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestCmdQueryJSON(t *testing.T) {
	dir := t.TempDir()
	db := writeFile(t, dir, "db.park", `emp(tom).`)
	if err := cmdQuery([]string{"-db", db, "-q", `emp(X)`, "-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-db", db, "-q", `emp(X)`, "-format", "xml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestCmdTxn(t *testing.T) {
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := server.New(store)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &server.Client{BaseURL: ts.URL}
	ctx := context.Background()
	if _, err := c.SetProgram(ctx, `rule a priority 1: p -> +q. rule b priority 2: p -> -q.`, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transact(ctx, "+p."); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := txnTrace(ctx, c, 1, false, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "txn 1 (trace ") || !strings.Contains(out.String(), "conflict on q:") {
		t.Fatalf("text trace:\n%s", out.String())
	}
	out.Reset()
	if err := txnTrace(ctx, c, 1, true, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"traceId"`) {
		t.Fatalf("json trace:\n%s", out.String())
	}
	if err := txnTrace(ctx, c, 99, false, &out); err == nil {
		t.Fatal("missing trace accepted")
	}

	recent, err := c.RecentTxns(ctx)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := txnList(recent, false, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SEQ") || !strings.Contains(out.String(), "local") {
		t.Fatalf("txn list table:\n%s", out.String())
	}

	// The dispatcher paths: bad subcommand and bad seq.
	if err := cmdTxn(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := cmdTxn([]string{"bogus"}); err == nil {
		t.Fatal("bogus subcommand accepted")
	}
	if err := cmdTxn([]string{"trace", "-url", ts.URL, "nope"}); err == nil {
		t.Fatal("bad seq accepted")
	}
	if err := cmdTxn([]string{"trace", "-url", ts.URL, "1"}); err != nil {
		t.Fatal(err)
	}
	// Flags after the sequence parse too.
	if err := cmdTxn([]string{"trace", "1", "-url", ts.URL}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTxn([]string{"slow", "-url", ts.URL}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTxn([]string{"list", "-url", ts.URL, "-json"}); err != nil {
		t.Fatal(err)
	}
}
