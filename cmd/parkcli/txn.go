package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/server"
)

// cmdTxn inspects the flight recorder of a running parkd:
//
//	parkcli txn trace [-url U] [-json] <seq>
//	parkcli txn slow  [-url U]
//	parkcli txn list  [-url U]
func cmdTxn(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: parkcli txn trace|slow|list [flags]")
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("txn "+sub, flag.ExitOnError)
	url := fs.String("url", "http://localhost:7474", "parkd base URL")
	asJSON := fs.Bool("json", false, "print the raw JSON instead of the text rendering")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := &server.Client{BaseURL: *url}
	ctx := context.Background()
	switch sub {
	case "trace":
		// Accept flags on either side of the sequence (flag parsing
		// stops at the first positional, so re-parse the remainder).
		rest := fs.Args()
		if len(rest) == 0 {
			return fmt.Errorf("usage: parkcli txn trace [-url U] [-json] <seq>")
		}
		if len(rest) > 1 {
			if err := fs.Parse(rest[1:]); err != nil {
				return err
			}
			if fs.NArg() != 0 {
				return fmt.Errorf("usage: parkcli txn trace [-url U] [-json] <seq>")
			}
		}
		seq, err := strconv.Atoi(rest[0])
		if err != nil || seq < 1 {
			return fmt.Errorf("bad transaction sequence %q", rest[0])
		}
		c = &server.Client{BaseURL: *url}
		return txnTrace(ctx, c, seq, *asJSON, os.Stdout)
	case "slow":
		resp, err := c.SlowTxns(ctx)
		if err != nil {
			return err
		}
		return txnList(resp, *asJSON, os.Stdout)
	case "list":
		resp, err := c.RecentTxns(ctx)
		if err != nil {
			return err
		}
		return txnList(resp, *asJSON, os.Stdout)
	default:
		return fmt.Errorf("unknown txn subcommand %q (want trace, slow or list)", sub)
	}
}

// txnTrace prints one transaction's flight trace.
func txnTrace(ctx context.Context, c *server.Client, seq int, asJSON bool, w io.Writer) error {
	if asJSON {
		tr, err := c.TxnTrace(ctx, seq)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tr)
	}
	text, err := c.TxnTraceText(ctx, seq)
	if err != nil {
		return err
	}
	fmt.Fprint(w, text)
	return nil
}

// txnList prints a trace-summary table (txn slow / txn list).
func txnList(resp *server.TxnsResponse, asJSON bool, w io.Writer) error {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}
	if len(resp.Transactions) == 0 {
		fmt.Fprintf(w, "no traces retained (slow threshold %.3fs)\n", resp.SlowThresholdSeconds)
		return nil
	}
	fmt.Fprintf(w, "%6s  %-20s  %-6s  %9s  %6s  %5s  %9s\n",
		"SEQ", "TRACE", "ORIGIN", "WALL", "PHASES", "STEPS", "CONFLICTS")
	for _, t := range resp.Transactions {
		slowMark := ""
		if t.Slow {
			slowMark = " (slow)"
		}
		fmt.Fprintf(w, "%6d  %-20s  %-6s  %8.3fs  %6d  %5d  %9d%s\n",
			t.Seq, t.TraceID, t.Origin, t.WallSeconds, t.Phases, t.Steps, t.Conflicts, slowMark)
	}
	return nil
}
