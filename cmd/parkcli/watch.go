package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/server"
)

// cmdWatch streams committed transactions from a running parkd.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	url := fs.String("url", "http://localhost:7474", "parkd base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	return watch(ctx, *url, os.Stdout)
}

// watch connects and prints events until ctx is done.
func watch(ctx context.Context, url string, w io.Writer) error {
	c := &server.Client{BaseURL: url}
	events, err := c.Watch(ctx)
	if err != nil {
		return err
	}
	for txn := range events {
		for _, f := range txn.Added {
			fmt.Fprintf(w, "txn %d: + %s\n", txn.Seq, f)
		}
		for _, f := range txn.Removed {
			fmt.Fprintf(w, "txn %d: - %s\n", txn.Seq, f)
		}
	}
	return nil
}
