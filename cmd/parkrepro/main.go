// Command parkrepro reproduces every worked example of "The PARK
// Semantics for Active Rules" (EDBT 1996) — the E-series experiments
// of DESIGN.md — and verifies the computed result states against the
// paper. Run with -trace to see the paper-style step-by-step
// i-interpretations.
//
// Usage:
//
//	parkrepro [-id E4] [-trace] [-v]
//
// The exit status is non-zero if any reproduced result deviates from
// the expected one.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	park "repro"
)

func main() {
	var (
		id      = flag.String("id", "", "run only this experiment (e.g. E4)")
		trace   = flag.Bool("trace", false, "print paper-style evaluation traces")
		verbose = flag.Bool("v", false, "print programs and conflict details")
	)
	flag.Parse()

	failures := 0
	for _, exp := range experiments() {
		if *id != "" && exp.ID != *id {
			continue
		}
		if err := runExperiment(exp, *trace, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "%s: FAIL: %v\n", exp.ID, err)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}

func runExperiment(exp experiment, trace, verbose bool) error {
	fmt.Printf("== %s: %s\n", exp.ID, exp.Title)
	if verbose {
		fmt.Printf("   program:\n%s", indent(exp.Program))
		fmt.Printf("   database: %s\n", strings.TrimSpace(exp.Database))
		if exp.Updates != "" {
			fmt.Printf("   updates:  %s\n", strings.TrimSpace(exp.Updates))
		}
	}
	if exp.Run != nil {
		if err := exp.Run(trace, verbose); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	u := park.NewUniverse()
	prog, err := park.ParseProgram(u, exp.ID+"/program", exp.Program)
	if err != nil {
		return fmt.Errorf("parse program: %w", err)
	}
	db, err := park.ParseDatabase(u, exp.ID+"/database", exp.Database)
	if err != nil {
		return fmt.Errorf("parse database: %w", err)
	}
	var ups []park.Update
	if exp.Updates != "" {
		if ups, err = park.ParseUpdates(u, exp.ID+"/updates", exp.Updates); err != nil {
			return fmt.Errorf("parse updates: %w", err)
		}
	}
	opts := park.Options{}
	if trace {
		opts.Tracer = &park.TextTracer{W: os.Stdout, U: u, P: prog, Verbose: verbose}
	}
	strategy := park.Inertia()
	if exp.Strategy != nil {
		strategy = exp.Strategy()
	}
	eng, err := park.NewEngine(u, prog, strategy, opts)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	res, err := eng.Run(context.Background(), db, ups)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	got := park.FormatDatabase(u, res.Output)
	status := "OK"
	if got != exp.Expected {
		status = "MISMATCH"
	}
	fmt.Printf("   paper:    %s\n", exp.Expected)
	fmt.Printf("   measured: %s   [%s]\n", got, status)
	fmt.Printf("   stats: phases=%d steps=%d conflicts=%d blocked=%d gamma=%d+%d groundings=%d wall=%v\n",
		res.Stats.Phases, res.Stats.Steps, res.Stats.Conflicts, res.Stats.BlockedInstances,
		res.RunStats.FullSteps, res.RunStats.DeltaSteps, res.RunStats.Groundings,
		res.RunStats.Wall.Round(time.Microsecond))
	if exp.Notes != "" {
		fmt.Printf("   note: %s\n", exp.Notes)
	}
	if verbose {
		for _, rc := range res.Conflicts {
			fmt.Printf("   conflict %s -> %s\n", rc.Conflict.String(u, eng.Program()), rc.Decision)
		}
		for _, g := range res.Blocked {
			fmt.Printf("   blocked %s\n", g.String(u, eng.Program()))
		}
	}
	if exp.Check != nil {
		if err := exp.Check(u, res); err != nil {
			return err
		}
	}
	fmt.Println()
	if got != exp.Expected {
		return fmt.Errorf("result %s, want %s", got, exp.Expected)
	}
	return nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	for i, l := range lines {
		lines[i] = "      " + strings.TrimSpace(l)
	}
	return strings.Join(lines, "\n") + "\n"
}
