package main

import (
	"context"
	"testing"

	park "repro"
)

// Every E-series experiment must reproduce the paper exactly; this is
// the same check `go run ./cmd/parkrepro` performs, wired into the
// test suite.
func TestAllExperimentsReproduce(t *testing.T) {
	exps := experiments()
	if len(exps) != 12 {
		t.Fatalf("experiment count = %d, want 12 (E1–E12)", len(exps))
	}
	seen := map[string]bool{}
	for _, exp := range exps {
		if seen[exp.ID] {
			t.Fatalf("duplicate experiment id %s", exp.ID)
		}
		seen[exp.ID] = true
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			if err := runExperiment(exp, false, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The traced/verbose paths must also succeed (they print the paper
// style traces).
func TestExperimentsWithTrace(t *testing.T) {
	for _, exp := range experiments() {
		if err := runExperiment(exp, true, true); err != nil {
			t.Fatalf("%s (traced): %v", exp.ID, err)
		}
	}
}

// Every standard-flow paper example must produce its exact paper
// result under EVERY engine configuration — the modes are
// observationally equivalent on the full E-series.
func TestExperimentsAcrossEngineModes(t *testing.T) {
	modes := map[string]park.Options{
		"default":    {},
		"naive":      {Naive: true},
		"noindex":    {NoIndex: true},
		"parallel":   {Parallel: 4},
		"resolveone": {ResolveOne: true},
		"explain":    {Explain: true},
	}
	for _, exp := range experiments() {
		if exp.Run != nil || exp.Expected == "" {
			continue
		}
		for mode, opts := range modes {
			t.Run(exp.ID+"/"+mode, func(t *testing.T) {
				u := park.NewUniverse()
				prog, err := park.ParseProgram(u, "", exp.Program)
				if err != nil {
					t.Fatal(err)
				}
				db, err := park.ParseDatabase(u, "", exp.Database)
				if err != nil {
					t.Fatal(err)
				}
				var ups []park.Update
				if exp.Updates != "" {
					if ups, err = park.ParseUpdates(u, "", exp.Updates); err != nil {
						t.Fatal(err)
					}
				}
				strategy := park.Inertia()
				if exp.Strategy != nil {
					strategy = exp.Strategy()
				}
				eng, err := park.NewEngine(u, prog, strategy, opts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run(context.Background(), db, ups)
				if err != nil {
					t.Fatal(err)
				}
				if got := park.FormatDatabase(u, res.Output); got != exp.Expected {
					t.Fatalf("%s under %s: %s, want %s", exp.ID, mode, got, exp.Expected)
				}
			})
		}
	}
}
