package main

import (
	"context"
	"fmt"

	park "repro"
)

// experiment describes one E-series reproduction.
type experiment struct {
	ID       string
	Title    string
	Program  string
	Database string
	Updates  string
	// Strategy constructs the SELECT policy (nil = inertia).
	Strategy func() park.Strategy
	// Expected is the paper's result state in FormatDatabase form.
	Expected string
	Notes    string
	// Check optionally verifies additional properties (trace shape,
	// conflict counts, blocked sets).
	Check func(u *park.Universe, res *park.Result) error
	// Run overrides the standard flow entirely (used by E2/E3's
	// baseline comparisons and E12's safety checks).
	Run func(trace, verbose bool) error
}

func experiments() []experiment {
	return []experiment{
		{
			ID:    "E1",
			Title: "§4.1 P1 under inertia: conflicting ±a suppressed",
			Program: `
				p -> +q.
				p -> -a.
				q -> +a.
			`,
			Database: `p.`,
			Expected: "{p, q}",
		},
		{
			ID:    "E2",
			Title: "§4.1 P2: restart semantics vs naive post-hoc elimination",
			Run: func(trace, verbose bool) error {
				return compareWithPostHoc(`
					p -> +q.
					p -> -a.
					q -> +a.
					!a -> +r.
					a -> +s.
				`, `p.`, "{p, q, r}", "{p, q, r, s}")
			},
		},
		{
			ID:    "E3",
			Title: "§4.1 P3: false conflicts must not poison independent derivations",
			Run: func(trace, verbose bool) error {
				return compareWithPostHoc(`
					p -> +q.
					p -> -q.
					q -> +a.
					q -> -a.
					p -> +a.
				`, `p.`, "{a, p}", "{p}")
			},
		},
		{
			ID:    "E4",
			Title: "§4.2 graph example: irreflexive, non-transitive arc set",
			Program: `
				rule r1: p(X), p(Y) -> +q(X, Y).
				rule r2: q(X, X) -> -q(X, X).
				rule r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
			`,
			Database: `p(a). p(b). p(c).`,
			Strategy: func() park.Strategy { return graphSelect() },
			Expected: "{p(a), p(b), p(c), q(a, b), q(b, a), q(b, c), q(c, b)}",
			Notes:    "SELECT per the paper: drop loops and the a<->c arcs, keep the rest",
			Check: func(u *park.Universe, res *park.Result) error {
				if res.Stats.Conflicts != 9 {
					return fmt.Errorf("conflicts = %d, want 9", res.Stats.Conflicts)
				}
				return nil
			},
		},
		{
			ID:    "E5",
			Title: "§4.3 ECA rules without conflict: update +q(b) cascades",
			Program: `
				rule r1: p(X) -> +q(X).
				rule r2: q(X) -> +r(X).
				rule r3: +r(X) -> -s(X).
			`,
			Database: `p(a). s(a). s(b).`,
			Updates:  `+q(b).`,
			Expected: "{p(a), q(a), q(b), r(a), r(b)}",
		},
		{
			ID:    "E6",
			Title: "§4.3 ECA rules with a conflict under inertia",
			Program: `
				rule r1: q(X, a) -> -p(X, a).
				rule r2: q(a, X) -> +r(a, X).
				rule r3: +r(X, Y) -> +p(X, Y).
			`,
			Database: `p(a, a). p(a, b). p(a, c).`,
			Updates:  `+q(a, a).`,
			Expected: "{p(a, a), p(a, b), p(a, c), q(a, a), r(a, a)}",
			Notes: "paper erratum: its printed result omits q(a, a), but the update rule " +
				"-> +q(a,a) of P_U always fires and incorp keeps it; the paper's own " +
				"§4.3 first example keeps the updated q atoms. Also, the paper's trace " +
				"blocks both r1 and r3 while the formal SELECT definition blocks only " +
				"the losing side (r1); the result state is the same either way.",
			Check: func(u *park.Universe, res *park.Result) error {
				if len(res.Blocked) != 1 || res.Blocked[0].Rule != 0 {
					return fmt.Errorf("blocked = %v, want exactly r1's instance", res.Blocked)
				}
				return nil
			},
		},
		{
			ID:       "E7",
			Title:    "§5 strategy example under the principle of inertia",
			Program:  sec5Program,
			Database: `p.`,
			Expected: "{a, b, p}",
			Check: func(u *park.Universe, res *park.Result) error {
				return expectBlockedRules(res, 1, 4) // r2 then r5
			},
		},
		{
			ID:    "E8",
			Title: "§5 counterintuitive inertia: contradictory chain withdraws everything",
			Program: `
				rule r1: a -> +b.
				rule r2: a -> +d.
				rule r3: b -> +c.
				rule r4: b -> -d.
				rule r5: c -> -b.
			`,
			Database: `a.`,
			Expected: "{a}",
			Notes:    "the paper notes the intuitive result would be {a, d}; inertia yields {a}",
		},
		{
			ID:       "E9",
			Title:    "§5 strategy example under rule priority",
			Program:  sec5Program,
			Database: `p.`,
			Strategy: func() park.Strategy { return park.Priority(nil) },
			Expected: "{a, b, p, q}",
			Check: func(u *park.Universe, res *park.Result) error {
				return expectBlockedRules(res, 1, 3) // r2 then r4
			},
		},
		{
			ID:    "E10",
			Title: "§2 payroll example rule",
			Program: `
				emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
			`,
			Database: `
				emp(tom). emp(ann).
				active(ann).
				payroll(tom, 100). payroll(ann, 120).
			`,
			Expected: "{active(ann), emp(ann), emp(tom), payroll(ann, 120)}",
		},
		{
			ID:    "E11",
			Title: "§4.2 remark: blocking is slightly over-eager on the graph example",
			Run:   runE11,
		},
		{
			ID:    "E12",
			Title: "§2 safety conditions enforced at load time",
			Run:   runE12,
		},
	}
}

const sec5Program = `
	rule r1 priority 1: p -> +a.
	rule r2 priority 2: p -> +q.
	rule r3 priority 3: a -> +b.
	rule r4 priority 4: a -> -q.
	rule r5 priority 5: b -> +q.
`

// graphSelect is the ad-hoc SELECT of the §4.2 example.
func graphSelect() park.Strategy {
	return park.StrategyFunc{
		StrategyName: "paper-graph",
		Fn: func(in *park.SelectInput) (park.Decision, error) {
			args := in.Universe.AtomArgs(in.Conflict.Atom)
			x := in.Universe.Syms.Name(args[0])
			y := in.Universe.Syms.Name(args[1])
			if x == y || (x == "a" && y == "c") || (x == "c" && y == "a") {
				return park.DecideDelete, nil
			}
			return park.DecideInsert, nil
		},
	}
}

func expectBlockedRules(res *park.Result, rules ...int32) error {
	if len(res.Blocked) != len(rules) {
		return fmt.Errorf("blocked %d instances, want %d", len(res.Blocked), len(rules))
	}
	for i, want := range rules {
		if res.Blocked[i].Rule != want {
			return fmt.Errorf("blocked[%d] is rule index %d, want %d", i, res.Blocked[i].Rule, want)
		}
	}
	return nil
}

// compareWithPostHoc runs both PARK and the naive post-hoc baseline,
// verifying that PARK matches the paper's desired result and that the
// baseline reproduces the paper's "wrong" one.
func compareWithPostHoc(progSrc, dbSrc, wantPark, wantPostHoc string) error {
	res, u, err := park.Eval(context.Background(), progSrc, dbSrc, "", park.Inertia(), park.Options{})
	if err != nil {
		return err
	}
	gotPark := park.FormatDatabase(u, res.Output)

	u2 := park.NewUniverse()
	prog, err := park.ParseProgram(u2, "", progSrc)
	if err != nil {
		return err
	}
	db, err := park.ParseDatabase(u2, "", dbSrc)
	if err != nil {
		return err
	}
	post, _, err := park.PostHoc(context.Background(), u2, prog, db, nil)
	if err != nil {
		return err
	}
	gotPost := park.FormatDatabase(u2, post)

	fmt.Printf("   paper (PARK):      %s\n", wantPark)
	fmt.Printf("   measured (PARK):   %s   [%s]\n", gotPark, okStr(gotPark == wantPark))
	fmt.Printf("   paper (post-hoc):  %s\n", wantPostHoc)
	fmt.Printf("   measured (post-hoc): %s   [%s]\n", gotPost, okStr(gotPost == wantPostHoc))
	if gotPark != wantPark {
		return fmt.Errorf("PARK result %s, want %s", gotPark, wantPark)
	}
	if gotPost != wantPostHoc {
		return fmt.Errorf("post-hoc result %s, want the paper's wrong %s", gotPost, wantPostHoc)
	}
	return nil
}

func okStr(ok bool) string {
	if ok {
		return "OK"
	}
	return "MISMATCH"
}

// runE11 re-runs the graph example and shows that rule r3 instances
// were blocked even though, after the resolution, they could never
// fire again — the paper's closing remark on §4.2.
func runE11(trace, verbose bool) error {
	u := park.NewUniverse()
	prog, err := park.ParseProgram(u, "", `
		rule r1: p(X), p(Y) -> +q(X, Y).
		rule r2: q(X, X) -> -q(X, X).
		rule r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
	`)
	if err != nil {
		return err
	}
	db, err := park.ParseDatabase(u, "", `p(a). p(b). p(c).`)
	if err != nil {
		return err
	}
	eng, err := park.NewEngine(u, prog, graphSelect(), park.Options{})
	if err != nil {
		return err
	}
	res, err := eng.Run(context.Background(), db, nil)
	if err != nil {
		return err
	}
	counts := map[int32]int{}
	for _, g := range res.Blocked {
		counts[g.Rule]++
	}
	fmt.Printf("   blocked instances by rule: r1=%d r2=%d r3=%d\n", counts[0], counts[1], counts[2])
	fmt.Printf("   note: the r2/r3 instances blocked for the 4 kept arcs can never fire\n")
	fmt.Printf("   again after resolution — the over-eagerness the paper remarks on;\n")
	fmt.Printf("   it does not affect the result state.\n")
	if counts[0] != 5 {
		return fmt.Errorf("blocked r1 instances = %d, want 5", counts[0])
	}
	if counts[2] == 0 {
		return fmt.Errorf("expected some r3 instances to be blocked")
	}
	return nil
}

// runE12 verifies that the two §2 safety conditions are rejected at
// load time.
func runE12(trace, verbose bool) error {
	u := park.NewUniverse()
	if _, err := park.ParseProgram(u, "", `p(X) -> +q(Y).`); err == nil {
		return fmt.Errorf("safety condition 1 (head variables) not enforced")
	} else {
		fmt.Printf("   condition 1 rejected: %v\n", err)
	}
	if _, err := park.ParseProgram(u, "", `p(X), !r(Y) -> +q(X).`); err == nil {
		return fmt.Errorf("safety condition 2 (negated variables) not enforced")
	} else {
		fmt.Printf("   condition 2 rejected: %v\n", err)
	}
	return nil
}
