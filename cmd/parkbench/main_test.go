package main

import "testing"

// Every B-series experiment must run to completion in quick mode and
// pass its built-in shape checks.
func TestAllBenchExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness runs take a few seconds")
	}
	runs := map[string]func(bool) error{
		"B1":  runB1,
		"B2":  runB2,
		"B3":  runB3,
		"B4":  runB4,
		"B5":  runB5,
		"B6":  runB6,
		"B7":  runB7,
		"B8":  runB8,
		"B9":  runB9,
		"B10": runB10,
		"B11": runB11,
		"B12": runB12,
		"B14": runB14,
	}
	for id, run := range runs {
		id, run := id, run
		t.Run(id, func(t *testing.T) {
			if err := run(true); err != nil {
				t.Fatal(err)
			}
		})
	}
}
