package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	park "repro"
	"repro/internal/metrics"
	"repro/internal/parser"
	"repro/internal/persist"
	"repro/internal/workload"
)

// evalScenario parses and runs one scenario, returning the result and
// wall time (best of three runs to damp noise).
func evalScenario(sc workload.Scenario, strat park.Strategy, opts park.Options) (*park.Result, *park.Universe, time.Duration, error) {
	var best time.Duration = math.MaxInt64
	var res *park.Result
	var u *park.Universe
	for rep := 0; rep < 3; rep++ {
		uu := park.NewUniverse()
		prog, err := park.ParseProgram(uu, sc.Name, sc.Program)
		if err != nil {
			return nil, nil, 0, err
		}
		db, err := park.ParseDatabase(uu, sc.Name, sc.Database)
		if err != nil {
			return nil, nil, 0, err
		}
		var ups []park.Update
		if sc.Updates != "" {
			if ups, err = park.ParseUpdates(uu, sc.Name, sc.Updates); err != nil {
				return nil, nil, 0, err
			}
		}
		eng, err := park.NewEngine(uu, prog, strat, opts)
		if err != nil {
			return nil, nil, 0, err
		}
		start := time.Now()
		r, err := eng.Run(context.Background(), db, ups)
		if err != nil {
			return nil, nil, 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
		res, u = r, uu
	}
	return res, u, best, nil
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// B1 — polynomial data complexity: transitive closure over growing
// random graphs. The paper claims PARK is computable in time
// polynomial in |D|; the log-log slope between successive rows should
// stay bounded (TC is O(n³) in the worst case).
func runB1(quick bool) error {
	sizes := []int{8, 16, 32, 64}
	if quick {
		sizes = []int{8, 16, 32}
	}
	w := table()
	fmt.Fprintln(w, "nodes\tedges\ttc-atoms\tsteps\tderivations\ttime\tslope")
	var prevTime time.Duration
	var prevN int
	for _, n := range sizes {
		sc := workload.TransitiveClosure(n, 20, 1)
		res, u, d, err := evalScenario(sc, nil, park.Options{})
		if err != nil {
			return err
		}
		edges, tcs := 0, 0
		for _, id := range res.Output.Atoms() {
			switch u.AtomPred(id) {
			case mustSym(u, "edge"):
				edges++
			case mustSym(u, "tc"):
				tcs++
			}
		}
		slope := "-"
		if prevTime > 0 {
			s := math.Log(float64(d)/float64(prevTime)) / math.Log(float64(n)/float64(prevN))
			slope = fmt.Sprintf("%.2f", s)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%v\t%s\n", n, edges, tcs, res.Stats.Steps, res.Stats.Derivations, d.Round(time.Microsecond), slope)
		prevTime, prevN = d, n
	}
	w.Flush()
	fmt.Println("shape check: slope stays bounded (≈ polynomial, TC ≤ O(n^3))")
	return nil
}

func mustSym(u *park.Universe, name string) park.Sym {
	s, ok := u.Syms.Lookup(name)
	if !ok {
		return -2
	}
	return s
}

// B2 — restart counts: the ladder workload plants k sequenced
// conflicts (k restarts expected); the wide workload plants k
// simultaneous conflicts (one restart). The paper's §4.2 termination
// argument bounds restarts by the number of blocked groundings.
func runB2(quick bool) error {
	ks := []int{1, 2, 4, 8, 16, 32}
	if quick {
		ks = []int{1, 2, 4, 8}
	}
	w := table()
	fmt.Fprintln(w, "workload\tk\tconflicts\tphases\tblocked\ttime")
	for _, k := range ks {
		sc := workload.ConflictLadder(k)
		res, _, d, err := evalScenario(sc, nil, park.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "ladder\t%d\t%d\t%d\t%d\t%v\n", k, res.Stats.Conflicts, res.Stats.Phases, res.Stats.BlockedInstances, d.Round(time.Microsecond))
		if res.Stats.Phases != k+1 {
			return fmt.Errorf("ladder-%d: phases = %d, want %d", k, res.Stats.Phases, k+1)
		}
	}
	for _, k := range ks {
		sc := workload.WideConflicts(k)
		res, _, d, err := evalScenario(sc, nil, park.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "wide\t%d\t%d\t%d\t%d\t%v\n", k, res.Stats.Conflicts, res.Stats.Phases, res.Stats.BlockedInstances, d.Round(time.Microsecond))
		if res.Stats.Phases != 2 {
			return fmt.Errorf("wide-%d: phases = %d, want 2", k, res.Stats.Phases)
		}
	}
	w.Flush()
	fmt.Println("shape check: ladder restarts grow linearly in k; wide needs one restart")
	return nil
}

// B3 — strategy costs on a conflict-heavy workload, matching the §5
// "Efficiency Needs" discussion: inertia/priority/random are
// constant-time per conflict, voting scales with its critics,
// specificity pays for subsumption checks.
func runB3(quick bool) error {
	k := 24
	if quick {
		k = 8
	}
	sc := workload.ConflictLadder(k)
	always := func(d park.Decision) park.Critic {
		return park.CriticFunc{CriticName: "const", Fn: func(*park.SelectInput) (park.Decision, error) { return d, nil }}
	}
	strategies := []struct {
		name  string
		strat park.Strategy
	}{
		{"inertia", park.Inertia()},
		{"priority", park.Priority(nil)},
		{"random(seed=1)", park.Random(1)},
		{"voting(3 critics)", park.Voting(always(park.DecideInsert), always(park.DecideDelete), always(park.DecideDelete))},
		{"voting(9 critics)", park.Voting(always(park.DecideInsert), always(park.DecideDelete), always(park.DecideDelete),
			always(park.DecideInsert), always(park.DecideDelete), always(park.DecideDelete),
			always(park.DecideInsert), always(park.DecideDelete), always(park.DecideDelete))},
		{"specificity+inertia", park.Specificity()},
	}
	w := table()
	fmt.Fprintln(w, "strategy\tconflicts\tphases\ttime")
	for _, s := range strategies {
		res, _, d, err := evalScenario(sc, s.strat, park.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\n", s.name, res.Stats.Conflicts, res.Stats.Phases, d.Round(time.Microsecond))
	}
	w.Flush()
	fmt.Println("shape check: all strategies resolve the same conflicts; voting cost grows with critics")
	return nil
}

// B4 — PARK vs the naive post-hoc baseline on random conflict-bearing
// programs: how often the two semantics disagree (P2/P3 generalize),
// at what relative cost.
func runB4(quick bool) error {
	n := 300
	if quick {
		n = 60
	}
	diverged, conflictful := 0, 0
	var parkTime, postTime time.Duration
	for seed := int64(0); seed < int64(n); seed++ {
		sc := workload.RandomProgram(10, 4, 4, seed)
		u := park.NewUniverse()
		prog, err := park.ParseProgram(u, "", sc.Program)
		if err != nil {
			return err
		}
		db, err := park.ParseDatabase(u, "", sc.Database)
		if err != nil {
			return err
		}
		eng, err := park.NewEngine(u, prog, nil, park.Options{})
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := eng.Run(context.Background(), db, nil)
		if err != nil {
			return err
		}
		parkTime += time.Since(start)
		start = time.Now()
		post, _, err := park.PostHoc(context.Background(), u, prog, db, nil)
		if err != nil {
			return err
		}
		postTime += time.Since(start)
		if res.Stats.Conflicts > 0 {
			conflictful++
			if park.FormatDatabase(u, res.Output) != park.FormatDatabase(u, post) {
				diverged++
			}
		}
	}
	w := table()
	fmt.Fprintln(w, "programs\twith-conflicts\tdiverged\tdiverged%\tpark-time\tposthoc-time")
	pct := 0.0
	if conflictful > 0 {
		pct = 100 * float64(diverged) / float64(conflictful)
	}
	fmt.Fprintf(w, "%d\t%d\t%d\t%.1f%%\t%v\t%v\n", n, conflictful, diverged, pct,
		parkTime.Round(time.Millisecond), postTime.Round(time.Millisecond))
	w.Flush()
	fmt.Println("shape check: a significant fraction of conflict-bearing programs diverge;")
	fmt.Println("costs are of the same order (PARK pays for restarts, post-hoc for wasted facts)")
	if conflictful > 0 && diverged == 0 {
		return fmt.Errorf("no divergence observed — baseline comparison is broken")
	}
	return nil
}

// B5 — ablation: semi-naive vs naive Γ. The chain workload has Θ(n)
// steps with O(1) new facts each, the worst case for naive
// re-evaluation (quadratic) and the best case for semi-naive.
func runB5(quick bool) error {
	sizes := []int{64, 128, 256, 512}
	if quick {
		sizes = []int{32, 64, 128}
	}
	w := table()
	fmt.Fprintln(w, "chain-n\tseminaive\tnaive\tspeedup\tsemi-derivs\tnaive-derivs")
	for _, n := range sizes {
		sc := workload.Chain(n)
		semi, _, dSemi, err := evalScenario(sc, nil, park.Options{})
		if err != nil {
			return err
		}
		naive, _, dNaive, err := evalScenario(sc, nil, park.Options{Naive: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%v\t%v\t%.1fx\t%d\t%d\n", n,
			dSemi.Round(time.Microsecond), dNaive.Round(time.Microsecond),
			float64(dNaive)/float64(dSemi), semi.Stats.Derivations, naive.Stats.Derivations)
	}
	w.Flush()
	fmt.Println("shape check: naive derivations grow quadratically, semi-naive linearly")
	return nil
}

// B6 — ablation: indexed vs linear matching. The selective join is
// probe-dominated, so hash indexes shine there; the transitive
// closure rows show that on derivation-dominated workloads indexing
// is cost-neutral (bookkeeping dominates).
func runB6(quick bool) error {
	joinSizes := []int{4000, 16000, 64000}
	tcSizes := []int{32}
	if quick {
		joinSizes = []int{2000, 8000}
		tcSizes = []int{24}
	}
	w := table()
	fmt.Fprintln(w, "workload\tsize\tindexed\tlinear\tspeedup")
	for _, n := range joinSizes {
		sc := workload.SelectiveJoin(n, 512, 1)
		_, _, dIdx, err := evalScenario(sc, nil, park.Options{})
		if err != nil {
			return err
		}
		_, _, dLin, err := evalScenario(sc, nil, park.Options{NoIndex: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "seljoin\t%d\t%v\t%v\t%.1fx\n", n, dIdx.Round(time.Microsecond), dLin.Round(time.Microsecond), float64(dLin)/float64(dIdx))
	}
	for _, n := range tcSizes {
		sc := workload.TransitiveClosure(n, 20, 1)
		_, _, dIdx, err := evalScenario(sc, nil, park.Options{})
		if err != nil {
			return err
		}
		_, _, dLin, err := evalScenario(sc, nil, park.Options{NoIndex: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "tc\t%d\t%v\t%v\t%.1fx\n", n, dIdx.Round(time.Microsecond), dLin.Round(time.Microsecond), float64(dLin)/float64(dIdx))
	}
	w.Flush()
	fmt.Println("shape check: indexed speedup grows with relation size on probe-bound")
	fmt.Println("workloads and is neutral on derivation-bound ones")
	return nil
}

// B7 — ECA trigger cascades: scaling in depth (chain of event rules)
// and width (number of seeding updates).
func runB7(quick bool) error {
	depths := []int{4, 16, 64, 256}
	widths := []int{1, 8, 64}
	if quick {
		depths = []int{4, 16, 64}
		widths = []int{1, 8}
	}
	w := table()
	fmt.Fprintln(w, "depth\twidth\tsteps\tnew-facts\ttime")
	for _, depth := range depths {
		for _, width := range widths {
			sc := workload.TriggerCascade(depth, width)
			res, _, d, err := evalScenario(sc, nil, park.Options{})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%v\n", depth, width, res.Stats.Steps, res.Stats.NewFacts, d.Round(time.Microsecond))
			if res.Stats.Steps < depth {
				return fmt.Errorf("cascade depth %d finished in %d steps", depth, res.Stats.Steps)
			}
		}
	}
	w.Flush()
	fmt.Println("shape check: steps grow linearly with depth, facts with depth×width")
	return nil
}

// B8 — the unambiguity requirement: the sequential baseline yields
// multiple result states across firing orders (and may not terminate),
// while PARK always yields exactly one.
func runB8(quick bool) error {
	orders := 60
	if quick {
		orders = 20
	}
	scenarios := []struct {
		name string
		prog string
		db   string
	}{
		{"mutex", "p, !b -> +a.\np, !a -> +b.\n", "p."},
		{"sec5", "p -> +a.\np -> +q.\na -> +b.\na -> -q.\nb -> +q.\n", "p."},
		{"random-17", workload.RandomProgram(8, 3, 3, 17).Program, workload.RandomProgram(8, 3, 3, 17).Database},
	}
	w := table()
	fmt.Fprintln(w, "program\torders\tdistinct-sequential\tnon-terminating\tpark-results")
	for _, s := range scenarios {
		u := park.NewUniverse()
		prog, err := park.ParseProgram(u, "", s.prog)
		if err != nil {
			return err
		}
		db, err := park.ParseDatabase(u, "", s.db)
		if err != nil {
			return err
		}
		results, nonTerm, err := park.SequentialDistinctResults(context.Background(), u, prog, db, nil, orders, 5000)
		if err != nil {
			return err
		}
		// PARK: always exactly one result (checked by running twice).
		eng, err := park.NewEngine(u, prog, nil, park.Options{})
		if err != nil {
			return err
		}
		r1, err := eng.Run(context.Background(), db, nil)
		if err != nil {
			return err
		}
		r2, err := eng.Run(context.Background(), db, nil)
		if err != nil {
			return err
		}
		parkResults := 1
		if park.FormatDatabase(u, r1.Output) != park.FormatDatabase(u, r2.Output) {
			parkResults = 2
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", s.name, orders, len(results), nonTerm, parkResults)
	}
	w.Flush()
	fmt.Println("shape check: sequential firing is ambiguous; PARK is a function")
	return nil
}

// B9 — ablation: the §4.2 closing-remark variant that blocks only one
// conflict per restart (Options.ResolveOne) versus blocking the losing
// side of every current conflict. Same results, different
// restart/blocked trade-off.
func runB9(quick bool) error {
	ks := []int{4, 16, 64}
	if quick {
		ks = []int{4, 16}
	}
	w := table()
	fmt.Fprintln(w, "workload\tmode\tphases\tblocked\ttime\tsame-result")
	for _, k := range ks {
		sc := workload.WideConflicts(k)
		all, uAll, dAll, err := evalScenario(sc, nil, park.Options{})
		if err != nil {
			return err
		}
		one, uOne, dOne, err := evalScenario(sc, nil, park.Options{ResolveOne: true})
		if err != nil {
			return err
		}
		same := park.FormatDatabase(uAll, all.Output) == park.FormatDatabase(uOne, one.Output)
		fmt.Fprintf(w, "wide-%d\tall\t%d\t%d\t%v\t\n", k, all.Stats.Phases, all.Stats.BlockedInstances, dAll.Round(time.Microsecond))
		fmt.Fprintf(w, "wide-%d\tone\t%d\t%d\t%v\t%v\n", k, one.Stats.Phases, one.Stats.BlockedInstances, dOne.Round(time.Microsecond), same)
		if !same {
			return fmt.Errorf("wide-%d: blocking granularity changed the result", k)
		}
	}
	w.Flush()
	fmt.Println("shape check: one-per-restart trades restarts for smaller steps; results agree")
	return nil
}

// B10 — parallel full-step evaluation: speedup of Options.Parallel on
// a scan-heavy workload (linear matching makes the join work dominate
// the sequential bookkeeping). The attainable speedup is bounded by
// the machine's core count, which the table reports; on a single-core
// machine the expected and measured speedup is ~1x, and the
// experiment then only verifies that parallelism costs little and
// changes nothing.
func runB10(quick bool) error {
	n := 64000
	if quick {
		n = 16000
	}
	sc := workload.SelectiveJoin(n, 512, 1)
	w := table()
	fmt.Fprintf(w, "cores available: %d\n", runtime.GOMAXPROCS(0))
	fmt.Fprintln(w, "mode\tworkers\ttime\tspeedup\tshards")
	base, _, d1, err := evalScenario(sc, nil, park.Options{NoIndex: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "linear\t1\t%v\t1.0x\t%d\n", d1.Round(time.Microsecond), base.RunStats.Shards)
	for _, workers := range []int{2, 4, 8} {
		res, _, d, err := evalScenario(sc, nil, park.Options{NoIndex: true, Parallel: workers})
		if err != nil {
			return err
		}
		if res.Stats.Derivations != base.Stats.Derivations {
			return fmt.Errorf("parallel run diverged: %d vs %d derivations", res.Stats.Derivations, base.Stats.Derivations)
		}
		fmt.Fprintf(w, "linear\t%d\t%v\t%.1fx\t%d\n", workers, d.Round(time.Microsecond), float64(d1)/float64(d), res.RunStats.Shards)
	}
	w.Flush()
	fmt.Println("shape check: results identical; speedup bounded by core count")
	return nil
}

// B11 — full-system throughput: transactions per second through the
// durable store (engine + WAL + fsync) as the database grows. The
// rule set is the HR scenario; each transaction deactivates one
// employee and triggers the §2 cleanup cascade. Absolute numbers are
// machine-specific; the shape claim is that per-transaction cost
// grows roughly linearly with database size (the engine reloads the
// interpretation per transaction).
func runB11(quick bool) error {
	sizes := []int{100, 400, 1600}
	txns := 50
	if quick {
		sizes = []int{100, 400}
		txns = 20
	}
	w := table()
	fmt.Fprintln(w, "employees\ttxns\ttotal\tper-txn\ttxn/s\tphases\tsteps\tgroundings")
	for _, n := range sizes {
		sc := workload.HRPayroll(n, 0, 7) // no updates; we drive them below
		dir, err := os.MkdirTemp("", "parkbench-b11-*")
		if err != nil {
			return err
		}
		store, err := persist.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		u := store.Universe()
		prog, err := parser.ParseProgram(u, "", sc.Program)
		if err != nil {
			return cleanupB11(store, dir, err)
		}
		seed, err := parser.ParseUpdates(u, "", dbToUpdates(sc.Database))
		if err != nil {
			return cleanupB11(store, dir, err)
		}
		if err := store.ApplyUpdates(context.Background(), seed); err != nil {
			return cleanupB11(store, dir, err)
		}
		// Aggregate the per-run engine counters the way the server's
		// /v1/metrics does, so the table shows where the time went.
		var phases, steps int
		var groundings int64
		start := time.Now()
		for i := 0; i < txns; i++ {
			ups, err := parser.ParseUpdates(u, "", fmt.Sprintf("-active(e%d).\n", i%n))
			if err != nil {
				return cleanupB11(store, dir, err)
			}
			res, err := store.Apply(context.Background(), prog, ups, nil, park.Options{})
			if err != nil {
				return cleanupB11(store, dir, err)
			}
			phases += res.RunStats.Phases
			steps += res.RunStats.Steps
			groundings += res.RunStats.Groundings
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%d\t%d\t%v\t%v\t%.0f\t%d\t%d\t%d\n", n, txns,
			elapsed.Round(time.Millisecond), (elapsed / time.Duration(txns)).Round(time.Microsecond),
			float64(txns)/elapsed.Seconds(), phases, steps, groundings)
		if err := cleanupB11(store, dir, nil); err != nil {
			return err
		}
	}
	w.Flush()
	fmt.Println("shape check: per-transaction cost grows ~linearly with database size")
	return nil
}

func cleanupB11(store *persist.Store, dir string, err error) error {
	store.Close()
	os.RemoveAll(dir)
	return err
}

// B12 — concurrent commit pipeline: transactions per second and tail
// latency of the durable store as the number of concurrent clients
// grows, with the group-commit pipeline versus the legacy serialized
// one (evaluation, WAL append and fsync all under one lock, one fsync
// per transaction). The workload keeps evaluation deliberately cheap
// — one rule firing per transaction — so the fsync is the dominant
// cost and the table isolates what the commit pipeline itself buys:
// with group commit a single fsync covers a whole batch of
// concurrently submitted transactions, so throughput scales with the
// client count while the serialized baseline stays flat at
// ~1/fsync-latency. Clients also interleave snapshot reads with their
// writes, which the pipeline serves lock-free.
func runB12(quick bool) error {
	txnsPerClient := 50
	clientCounts := []int{1, 2, 4, 8}
	if quick {
		txnsPerClient = 20
		clientCounts = []int{1, 8}
	}
	w := table()
	fmt.Fprintln(w, "mode\tclients\ttxns\ttotal\ttxn/s\tp50\tp99\tfsyncs\tretries")
	rates := map[string]float64{}
	for _, serialized := range []bool{true, false} {
		mode := "group"
		if serialized {
			mode = "serialized"
		}
		for _, clients := range clientCounts {
			r, err := runB12Once(serialized, clients, txnsPerClient)
			if err != nil {
				return fmt.Errorf("%s/%d clients: %w", mode, clients, err)
			}
			rates[fmt.Sprintf("%s-%d", mode, clients)] = r.rate
			fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%.0f\t%v\t%v\t%d\t%d\n",
				mode, clients, clients*txnsPerClient,
				r.elapsed.Round(time.Millisecond), r.rate,
				r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond),
				r.fsyncs, r.retries)
		}
	}
	w.Flush()
	max := clientCounts[len(clientCounts)-1]
	speedup := rates[fmt.Sprintf("group-%d", max)] / rates[fmt.Sprintf("serialized-%d", max)]
	// Short quick-mode runs are noisy; before declaring the shape
	// violated, re-measure the deciding pair of cells (best of three,
	// like evalScenario does for the engine benches).
	for attempt := 0; speedup < 1.2 && attempt < 3; attempt++ {
		rs, err := runB12Once(true, max, txnsPerClient)
		if err != nil {
			return err
		}
		rg, err := runB12Once(false, max, txnsPerClient)
		if err != nil {
			return err
		}
		if again := rg.rate / rs.rate; again > speedup {
			speedup = again
		}
	}
	fmt.Printf("shape check: at %d clients group commit is %.1fx the serialized pipeline\n", max, speedup)
	if speedup < 1.2 {
		return fmt.Errorf("group commit at %d clients is only %.2fx the serialized baseline; batching should amortize the fsync", max, speedup)
	}
	return nil
}

type b12Result struct {
	elapsed  time.Duration
	rate     float64 // transactions per second
	p50, p99 time.Duration
	fsyncs   int64
	retries  int64
}

// runB12Once drives one cell of the B12 table: clients goroutines,
// each committing txnsPerClient transactions (every one fires a
// rule) interleaved with snapshot reads. Each transaction replaces
// the client's previous event, so the database stays small and the
// per-transaction compute stays flat: the cell measures the commit
// pipeline, not interpretation loading. Updates are parsed before the
// clock starts for the same reason.
func runB12Once(serialized bool, clients, txnsPerClient int) (*b12Result, error) {
	dir, err := os.MkdirTemp("", "parkbench-b12-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var opts []persist.Option
	if serialized {
		opts = append(opts, persist.WithSerializedCommits())
	}
	store, err := persist.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	reg := metrics.NewRegistry()
	store.Instrument(reg)
	u := store.Universe()
	prog, err := parser.ParseProgram(u, "", `
rule log:   +ev(X) -> +audit(X).
rule unlog: -ev(X) -> -audit(X).
`)
	if err != nil {
		return nil, err
	}
	updates := make([][][]park.Update, clients)
	for c := 0; c < clients; c++ {
		updates[c] = make([][]park.Update, txnsPerClient)
		for i := 0; i < txnsPerClient; i++ {
			text := fmt.Sprintf("+ev(c%d_i%d).\n", c, i)
			if i > 0 {
				text += fmt.Sprintf("-ev(c%d_i%d).\n", c, i-1)
			}
			ups, err := parser.ParseUpdates(u, "", text)
			if err != nil {
				return nil, err
			}
			updates[c][i] = ups
		}
	}
	lats := metrics.NewDurations(clients * txnsPerClient)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < txnsPerClient; i++ {
				t0 := time.Now()
				if _, err := store.Apply(context.Background(), prog, updates[c][i], nil, park.Options{}); err != nil {
					errs <- err
					return
				}
				lats.Observe(time.Since(t0))
				// Mixed load: a lock-free read between writes.
				if i%2 == 0 {
					_ = store.Len()
				} else {
					_ = store.Seq()
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return nil, err
	}
	// Each client ends with exactly its last ev plus its audit twin.
	if want := 2 * clients; store.Len() != want {
		return nil, fmt.Errorf("store has %d facts, want %d", store.Len(), want)
	}
	return &b12Result{
		elapsed: elapsed,
		rate:    float64(lats.Count()) / elapsed.Seconds(),
		p50:     lats.Quantile(0.50),
		p99:     lats.Quantile(0.99),
		fsyncs:  reg.Counter("park_store_fsyncs_total", "").Value(),
		retries: reg.Counter("park_store_commit_retries_total", "").Value(),
	}, nil
}

// dbToUpdates rewrites a facts file into insertion updates.
func dbToUpdates(db string) string {
	var sb strings.Builder
	for _, line := range strings.Split(db, "\n") {
		for _, stmt := range strings.Split(line, ". ") {
			stmt = strings.TrimSpace(stmt)
			stmt = strings.TrimSuffix(stmt, ".")
			if stmt == "" || strings.HasPrefix(stmt, "%") {
				continue
			}
			sb.WriteString("+")
			sb.WriteString(stmt)
			sb.WriteString(".\n")
		}
	}
	return sb.String()
}
