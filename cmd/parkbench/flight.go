package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	park "repro"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/parser"
	"repro/internal/persist"
)

// B14 — flight-recorder overhead: transaction throughput of the
// durable store with the recorder off (trace buffer 0), on with the
// default configuration (recording every transaction, none of them
// slow), and on with the slow path always hit (threshold below every
// transaction, so each trace is also retained in the slow window and
// name resolution plus ring insertion happen on the retention path).
// The workload is the B12 cheap-evaluation commit loop, where fsync
// dominates; the recorder's per-event appends and post-commit name
// resolution must disappear into that cost. Target: always-on
// recording costs at most a few percent of throughput.
func runB14(quick bool) error {
	txnsPerClient := 50
	clientCounts := []int{1, 8}
	if quick {
		txnsPerClient = 20
	}
	modes := []string{"off", "on", "slow-hit"}
	w := table()
	fmt.Fprintln(w, "recorder\tclients\ttxns\ttotal\ttxn/s\tp50\tp99")
	rates := map[string]float64{}
	for _, mode := range modes {
		for _, clients := range clientCounts {
			r, err := runB14Once(mode, clients, txnsPerClient)
			if err != nil {
				return fmt.Errorf("%s/%d clients: %w", mode, clients, err)
			}
			rates[fmt.Sprintf("%s-%d", mode, clients)] = r.rate
			fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%.0f\t%v\t%v\n",
				mode, clients, clients*txnsPerClient,
				r.elapsed.Round(time.Millisecond), r.rate,
				r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond))
		}
	}
	w.Flush()
	max := clientCounts[len(clientCounts)-1]
	overhead := func(mode string) float64 {
		return 1 - rates[fmt.Sprintf("%s-%d", mode, max)]/rates[fmt.Sprintf("off-%d", max)]
	}
	worst := overhead("on")
	if o := overhead("slow-hit"); o > worst {
		worst = o
	}
	// Sub-second cells are noisy (a single straggling fsync moves a
	// cell several percent); before declaring the recorder expensive,
	// re-measure the deciding pair best-of-three, like B12 does.
	for attempt := 0; worst > 0.05 && attempt < 3; attempt++ {
		off, err := runB14Once("off", max, txnsPerClient)
		if err != nil {
			return err
		}
		worstAgain := 0.0
		for _, mode := range []string{"on", "slow-hit"} {
			on, err := runB14Once(mode, max, txnsPerClient)
			if err != nil {
				return err
			}
			if o := 1 - on.rate/off.rate; o > worstAgain {
				worstAgain = o
			}
		}
		if worstAgain < worst {
			worst = worstAgain
		}
	}
	fmt.Printf("shape check: worst-case recorder overhead at %d clients is %.1f%%\n", max, worst*100)
	if worst > 0.15 {
		return fmt.Errorf("flight recorder costs %.0f%% of throughput at %d clients; recording must be cheap enough to leave on", worst*100, max)
	}
	return nil
}

// runB14Once drives one cell of the B14 table: the B12 workload
// (clients goroutines, each committing txnsPerClient cheap
// rule-firing transactions) against a store whose flight recorder is
// configured per mode.
func runB14Once(mode string, clients, txnsPerClient int) (*b12Result, error) {
	dir, err := os.MkdirTemp("", "parkbench-b14-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var opts []persist.Option
	switch mode {
	case "off":
		opts = append(opts, persist.WithTraceBuffer(0))
	case "on":
		// The defaults: last-64 window, 250ms slow threshold (never hit
		// by this workload).
	case "slow-hit":
		// A negative threshold marks every transaction slow, forcing the
		// slow-retention path on each commit.
		opts = append(opts, persist.WithSlowThreshold(-time.Nanosecond))
	default:
		return nil, fmt.Errorf("unknown B14 mode %q", mode)
	}
	store, err := persist.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	u := store.Universe()
	prog, err := parser.ParseProgram(u, "", `
rule log:   +ev(X) -> +audit(X).
rule unlog: -ev(X) -> -audit(X).
`)
	if err != nil {
		return nil, err
	}
	updates := make([][][]park.Update, clients)
	for c := 0; c < clients; c++ {
		updates[c] = make([][]park.Update, txnsPerClient)
		for i := 0; i < txnsPerClient; i++ {
			text := fmt.Sprintf("+ev(c%d_i%d).\n", c, i)
			if i > 0 {
				text += fmt.Sprintf("-ev(c%d_i%d).\n", c, i-1)
			}
			ups, err := parser.ParseUpdates(u, "", text)
			if err != nil {
				return nil, err
			}
			updates[c][i] = ups
		}
	}
	lats := metrics.NewDurations(clients * txnsPerClient)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	ctx := flight.WithTraceID(context.Background(), "bench-b14")
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < txnsPerClient; i++ {
				t0 := time.Now()
				if _, err := store.Apply(ctx, prog, updates[c][i], nil, park.Options{}); err != nil {
					errs <- err
					return
				}
				lats.Observe(time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return nil, err
	}
	// The recorder must actually have been exercised (or off).
	ring := store.Flight()
	switch {
	case mode == "off" && ring != nil:
		return nil, fmt.Errorf("trace buffer 0 left the recorder on")
	case mode != "off" && (ring == nil || ring.Get(store.Seq()) == nil):
		return nil, fmt.Errorf("no trace recorded for the last transaction")
	case mode == "slow-hit" && len(ring.Slow()) == 0:
		return nil, fmt.Errorf("slow window empty despite always-slow threshold")
	}
	return &b12Result{
		elapsed: elapsed,
		rate:    float64(lats.Count()) / elapsed.Seconds(),
		p50:     lats.Quantile(0.50),
		p99:     lats.Quantile(0.99),
	}, nil
}
