package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	park "repro"
	"repro/internal/parser"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/server"
)

// B13 — read-replica scaling: sustained read throughput against a
// leader under write load, as read-only followers are added and
// queries fan out across them. Every node runs in this one process
// (stores, HTTP servers and replication streams all share the same
// cores), so the table measures the architecture — reads leaving the
// leader's commit path and spreading over independent stores — rather
// than added hardware; on a real deployment each follower brings its
// own cores and the scaling headroom is larger than what a
// single-machine run can show. The shape checks are therefore
// correctness-first: every follower must converge to the leader's
// exact state with zero final lag, and reads must keep flowing while
// followers replicate.
func runB13(quick bool) error {
	followerCounts := []int{0, 1, 2, 4}
	readers := 8
	window := 1500 * time.Millisecond
	if quick {
		followerCounts = []int{0, 2}
		window = 500 * time.Millisecond
	}
	w := table()
	fmt.Fprintln(w, "followers\treaders\treads\treads/s\twrites/s\tmax lag\tfinal lag\tconverge")
	baseRate := 0.0
	for _, n := range followerCounts {
		r, err := runB13Once(n, readers, window)
		if err != nil {
			return fmt.Errorf("%d followers: %w", n, err)
		}
		if n == 0 {
			baseRate = r.readRate
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.0f\t%.0f\t%d\t%d\t%v\n",
			n, readers, r.reads, r.readRate, r.writeRate,
			r.maxLag, r.finalLag, r.converge.Round(time.Millisecond))
	}
	w.Flush()
	fmt.Printf("shape check: followers converge exactly under write load; reads at max fan-out are %.2fx the leader-only rate (in-process run — one machine's cores shared by all nodes)\n",
		lastB13Rate/nonZero(baseRate))
	return nil
}

// lastB13Rate carries the last row's read rate into the shape-check
// line (set by runB13Once).
var lastB13Rate float64

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

type b13Result struct {
	reads     int64
	readRate  float64
	writeRate float64
	maxLag    int64
	finalLag  int
	converge  time.Duration
}

// runB13Once drives one row: a leader committing continuously (one
// rule firing per transaction, as in B12), n followers replicating
// it, and `readers` clients issuing conjunctive queries round-robin
// over the read endpoints (the followers when present, the leader
// otherwise) for the measurement window. After the window the writer
// stops and the row records how long the followers take to drain the
// remaining lag to zero, then verifies byte-for-byte state equality.
func runB13Once(followers, readers int, window time.Duration) (*b13Result, error) {
	dir, err := os.MkdirTemp("", "parkbench-b13-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := persist.Open(dir)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	leader := httptest.NewServer(server.New(store).Handler())
	defer leader.Close()
	u := store.Universe()
	prog, err := parser.ParseProgram(u, "", `
rule log:   +ev(X) -> +audit(X).
rule unlog: -ev(X) -> -audit(X).
`)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type replicaNode struct {
		store    *persist.Store
		follower *repl.Follower
		ts       *httptest.Server
	}
	var replicas []replicaNode
	defer func() {
		for _, rn := range replicas {
			rn.ts.Close()
			rn.store.Close()
		}
	}()
	for i := 0; i < followers; i++ {
		fdir, err := os.MkdirTemp("", "parkbench-b13-f*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(fdir)
		fstore, err := persist.Open(fdir)
		if err != nil {
			return nil, err
		}
		f := repl.NewFollower(fstore, leader.URL,
			repl.WithBackoff(5*time.Millisecond, 100*time.Millisecond))
		rts := httptest.NewServer(server.NewReplica(fstore, f, leader.URL).Handler())
		replicas = append(replicas, replicaNode{store: fstore, follower: f, ts: rts})
		go f.Run(ctx)
	}
	readURLs := []string{leader.URL}
	if followers > 0 {
		readURLs = readURLs[:0]
		for _, rn := range replicas {
			readURLs = append(readURLs, rn.ts.URL)
		}
	}

	// Writer: replace the previous event each transaction so the
	// database stays small and per-commit work flat.
	var writes, reads int64
	var maxLag int64
	writerDone := make(chan error, 1)
	stopWrites := make(chan struct{})
	go func() {
		i := 0
		for {
			select {
			case <-stopWrites:
				writerDone <- nil
				return
			default:
			}
			text := fmt.Sprintf("+ev(i%d).\n", i)
			if i > 0 {
				text += fmt.Sprintf("-ev(i%d).\n", i-1)
			}
			ups, err := parser.ParseUpdates(u, "", text)
			if err == nil {
				_, err = store.Apply(ctx, prog, ups, nil, park.Options{})
			}
			if err != nil {
				writerDone <- err
				return
			}
			atomic.AddInt64(&writes, 1)
			i++
		}
	}()
	// Lag sampler (steady-state lag under load, max over followers).
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				for _, rn := range replicas {
					if lag := int64(rn.follower.Status().LagSeq()); lag > atomic.LoadInt64(&maxLag) {
						atomic.StoreInt64(&maxLag, lag)
					}
				}
			}
		}
	}()

	// Readers: conjunctive queries round-robin over the read endpoints.
	var wg sync.WaitGroup
	stopReads := make(chan struct{})
	readerErrs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stopReads:
					return
				default:
				}
				c := &server.Client{BaseURL: readURLs[(r+j)%len(readURLs)]}
				if _, err := c.Query(ctx, "audit(X)"); err != nil {
					readerErrs <- err
					return
				}
				atomic.AddInt64(&reads, 1)
			}
		}(r)
	}

	start := time.Now()
	time.Sleep(window)
	close(stopReads)
	wg.Wait()
	elapsed := time.Since(start)
	close(stopWrites)
	if err := <-writerDone; err != nil {
		return nil, err
	}
	select {
	case err := <-readerErrs:
		return nil, err
	default:
	}

	// Drain: with writes stopped, every follower must reach the
	// leader's exact sequence and state.
	drainStart := time.Now()
	deadline := drainStart.Add(20 * time.Second)
	finalLag := 0
	for _, rn := range replicas {
		for rn.store.Seq() != store.Seq() {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("follower stuck at seq %d, leader at %d", rn.store.Seq(), store.Seq())
			}
			time.Sleep(2 * time.Millisecond)
		}
		if lag := rn.follower.Status().LagSeq(); lag > finalLag {
			finalLag = lag
		}
		if got, want := renderFacts(rn.store), renderFacts(store); got != want {
			return nil, fmt.Errorf("follower state %q, leader %q", got, want)
		}
	}
	res := &b13Result{
		reads:     atomic.LoadInt64(&reads),
		readRate:  float64(atomic.LoadInt64(&reads)) / elapsed.Seconds(),
		writeRate: float64(atomic.LoadInt64(&writes)) / elapsed.Seconds(),
		maxLag:    atomic.LoadInt64(&maxLag),
		finalLag:  finalLag,
		converge:  time.Since(drainStart),
	}
	lastB13Rate = res.readRate
	return res, nil
}

// renderFacts renders a store's database as one sorted string.
func renderFacts(s *persist.Store) string {
	u, db := s.Universe(), s.Snapshot()
	ids := append([]park.AID(nil), db.Atoms()...)
	u.SortAtoms(ids)
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ", "
		}
		out += u.AtomString(id)
	}
	return out
}
