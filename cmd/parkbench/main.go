// Command parkbench regenerates the B-series experiments of DESIGN.md:
// the scaling, ablation and comparison measurements that back the
// paper's complexity and design claims (polynomial tractability,
// bounded restarts, strategy costs, the necessity of the restart
// semantics, and the unambiguity requirement).
//
// Usage:
//
//	parkbench [-id B3] [-quick]
//
// Each experiment prints one table; EXPERIMENTS.md records the
// paper-vs-measured interpretation of every row.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		id    = flag.String("id", "", "run only this experiment (e.g. B2)")
		quick = flag.Bool("quick", false, "smaller parameter sweeps (CI-friendly)")
	)
	flag.Parse()

	type bench struct {
		id   string
		name string
		run  func(quick bool) error
	}
	benches := []bench{
		{"B1", "polynomial data complexity (transitive closure sweep)", runB1},
		{"B2", "restart count vs planted conflicts (ladder & wide)", runB2},
		{"B3", "conflict resolution strategy costs", runB3},
		{"B4", "PARK vs naive post-hoc: divergence and cost on random programs", runB4},
		{"B5", "ablation: semi-naive vs naive Γ evaluation", runB5},
		{"B6", "ablation: hash-indexed vs linear matching", runB6},
		{"B7", "ECA trigger-cascade scaling", runB7},
		{"B8", "unambiguity: sequential firing orders vs PARK", runB8},
		{"B9", "ablation: blocking granularity (all conflicts vs one per restart)", runB9},
		{"B10", "parallel full-step evaluation speedup", runB10},
		{"B11", "full-system transaction throughput (durable store)", runB11},
		{"B12", "concurrent commit pipeline: group commit vs serialized", runB12},
		{"B13", "read-replica scaling: throughput and lag vs follower count", runB13},
		{"B14", "flight-recorder overhead: off vs on vs always-slow", runB14},
	}
	failed := 0
	for _, b := range benches {
		if *id != "" && b.id != *id {
			continue
		}
		fmt.Printf("== %s: %s\n", b.id, b.name)
		if err := b.run(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", b.id, err)
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
