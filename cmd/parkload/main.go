// Command parkload is the open-loop load generator for parkd: it
// replays declarative scenarios (built-in families or scenarios/*.json
// files) against a server at a fixed arrival rate and emits a
// machine-readable report with throughput, latency quantiles, error
// counts, server-side counter deltas and per-endpoint CPU attribution.
//
// Unlike parkbench (closed-loop microbenchmarks of the engine and
// store), parkload measures the system the way clients experience it:
// arrivals come on a timetable whether or not the server keeps up, and
// latency includes the queueing that builds when it doesn't. See
// docs/BENCHMARKING.md for the methodology and docs/SCENARIOS.md for
// the scenario families.
//
// Usage:
//
//	go run ./cmd/parkload -all -out BENCH_PR6.json   # full suite, self-spawned leader
//	go run ./cmd/parkload -scenario mixed-rw         # one scenario
//	go run ./cmd/parkload -all -quick                # scaled-down smoke run
//	go run ./cmd/parkload -addr http://host:7474     # drive a running parkd
//	go run ./cmd/parkload -dir scenarios             # scenario files instead of built-ins
//	go run ./cmd/parkload -dump scenarios            # write built-ins as JSON files
//	go run ./cmd/parkload -check BENCH_PR6.json      # validate a report
//	go run ./cmd/parkload -list                      # list scenarios
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/load"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "", "drive a running server at this base URL instead of self-spawning")
		followers = flag.Int("followers", 0, "read replicas to spawn alongside the self-spawned leader")
		all       = flag.Bool("all", false, "run every scenario")
		scenario  = flag.String("scenario", "", "comma-separated scenario names to run")
		dir       = flag.String("dir", "", "load scenarios from *.json files in this directory instead of the built-ins")
		out       = flag.String("out", "", "write the report JSON here (default stdout)")
		quick     = flag.Bool("quick", false, "scale scenarios down for a smoke run (results not comparable)")
		label     = flag.String("label", "", "label recorded in the report (e.g. pr6)")
		rate      = flag.Float64("rate", 0, "override every selected scenario's arrival rate (ops/s)")
		duration  = flag.String("duration", "", "override every selected scenario's measured window")
		list      = flag.Bool("list", false, "list scenarios and exit")
		dump      = flag.String("dump", "", "write the built-in scenarios as JSON files into this directory and exit")
		check     = flag.String("check", "", "validate a report file against the parkload/v1 schema and exit")
		failover  = flag.Bool("failover", false, "drive a self-spawned 3-member replica set and kill the leader mid-run (default scenario: mixed-rw)")
		lease     = flag.Duration("failover-lease", time.Second, "leader lease for the -failover replica set")
	)
	flag.Parse()
	if err := run(*addr, *followers, *all, *scenario, *dir, *out, *label,
		*rate, *duration, *quick, *list, *dump, *check, *failover, *lease); err != nil {
		fmt.Fprintln(os.Stderr, "parkload:", err)
		os.Exit(1)
	}
}

func run(addr string, followers int, all bool, scenario, dir, out, label string,
	rate float64, duration string, quick, list bool, dump, check string,
	failover bool, lease time.Duration) error {
	if check != "" {
		return runCheck(check)
	}
	if dump != "" {
		return runDump(dump)
	}

	scenarios, err := loadScenarios(dir)
	if err != nil {
		return err
	}
	if list {
		for _, sc := range scenarios {
			fmt.Printf("%-16s %-10s rate=%-5.0f duration=%-4s %s\n",
				sc.Name, sc.Family, sc.Rate, sc.Duration, sc.Description)
		}
		return nil
	}

	if failover {
		if addr != "" {
			return fmt.Errorf("-failover spawns its own replica set; it is incompatible with -addr")
		}
		// The failover drill defaults to the canonical mixed read/write
		// scenario rather than the whole suite.
		if !all && scenario == "" {
			scenario = "mixed-rw"
		}
	}
	selected, err := selectScenarios(scenarios, all, scenario)
	if err != nil {
		return err
	}
	for i := range selected {
		if quick {
			selected[i] = load.QuickCopy(selected[i])
		}
		if rate > 0 {
			selected[i].Rate = rate
		}
		if duration != "" {
			selected[i].Duration = duration
		}
		if err := selected[i].Validate(); err != nil {
			return err
		}
	}

	ctx := context.Background()
	report := &load.Report{
		Schema:    load.ReportSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Label:     label,
		Quick:     quick,
	}
	for _, sc := range selected {
		fmt.Fprintf(os.Stderr, "=== %s (%s)\n", sc.Name, sc.Family)
		var (
			res *load.ScenarioResult
			err error
		)
		if failover {
			res, err = runFailoverScenario(ctx, &sc, lease)
		} else {
			res, err = runScenario(ctx, addr, followers, &sc)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  %s\n", oneLine(res))
		report.Scenarios = append(report.Scenarios, *res)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := load.ValidateReport(data); err != nil {
		return fmt.Errorf("generated report failed validation: %w", err)
	}
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d scenarios)\n", out, len(report.Scenarios))
	return nil
}

// runScenario drives one scenario, spawning a fresh in-process leader
// (plus followers) unless addr targets a running server. A fresh
// server per scenario keeps universes independent — constants minted
// by one family never bloat the next one's joins.
func runScenario(ctx context.Context, addr string, followers int, sc *load.Scenario) (*load.ScenarioResult, error) {
	base := addr
	var cleanup func()
	if base == "" {
		var err error
		base, cleanup, err = spawnCluster(ctx, followers)
		if err != nil {
			return nil, err
		}
		defer cleanup()
	}
	r := &load.Runner{
		Client:     &server.Client{BaseURL: base},
		ProfileURL: base,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	return r.Run(ctx, sc)
}

// spawnCluster starts an in-process leader — API plus the pprof
// profile handler on one listener, like parkd -pprof — and optionally
// read replicas following it, so the leader also carries replication
// fan-out while under load.
func spawnCluster(ctx context.Context, followers int) (baseURL string, cleanup func(), err error) {
	ctx, cancel := context.WithCancel(ctx)
	var cleanups []func()
	cleanup = func() {
		cancel()
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	defer func() {
		if err != nil {
			cleanup()
		}
	}()

	newNode := func(build func(store *persist.Store) http.Handler) (string, error) {
		nodeDir, err := os.MkdirTemp("", "parkload-*")
		if err != nil {
			return "", err
		}
		cleanups = append(cleanups, func() { os.RemoveAll(nodeDir) })
		store, err := persist.Open(nodeDir)
		if err != nil {
			return "", err
		}
		cleanups = append(cleanups, func() { store.Close() })
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		hs := &http.Server{Handler: build(store)}
		cleanups = append(cleanups, func() { hs.Close() })
		go hs.Serve(ln)
		return "http://" + ln.Addr().String(), nil
	}

	leaderURL, err := newNode(func(store *persist.Store) http.Handler {
		srv := server.New(store)
		cleanups = append(cleanups, srv.StopStreams)
		mux := http.NewServeMux()
		mux.Handle("/", srv.Handler())
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		return mux
	})
	if err != nil {
		return "", nil, err
	}
	for i := 0; i < followers; i++ {
		_, err := newNode(func(store *persist.Store) http.Handler {
			f := repl.NewFollower(store, leaderURL,
				repl.WithBackoff(5*time.Millisecond, 100*time.Millisecond))
			go f.Run(ctx)
			srv := server.NewReplica(store, f, leaderURL)
			cleanups = append(cleanups, srv.StopStreams)
			return srv.Handler()
		})
		if err != nil {
			return "", nil, err
		}
	}
	return leaderURL, cleanup, nil
}

// fmember is one member of the self-spawned failover replica set.
type fmember struct {
	id   string
	url  string
	stop func() // kills the member: node, streams, HTTP and store
}

// spawnFailoverSet starts an n-member in-process replica set with
// automatic failover: every member runs a store, a follower, an
// election node and the cluster API on its own listener, and every
// member gets the scenario's program so whichever leads evaluates the
// same rules (what parkd operators do with a shared -program).
func spawnFailoverSet(ctx context.Context, n int, lease time.Duration, program, strategy string) (members []*fmember, cleanup func(), err error) {
	ctx, cancel := context.WithCancel(ctx)
	var cleanups []func()
	cleanup = func() {
		cancel()
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	defer func() {
		if err != nil {
			cleanup()
		}
	}()

	// Listeners first: every node needs the full roster's URLs.
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	ids := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		cleanups = append(cleanups, func() { ln.Close() })
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
		ids[i] = fmt.Sprintf("n%d", i+1)
	}
	for i := 0; i < n; i++ {
		nodeDir, err := os.MkdirTemp("", "parkload-failover-*")
		if err != nil {
			return nil, nil, err
		}
		cleanups = append(cleanups, func() { os.RemoveAll(nodeDir) })
		// Each member gets its own event journal so the failover drill's
		// lifecycle events land in the report's eventDelta.
		ev := events.NewLog(0)
		ev.SetNodeID(ids[i])
		store, err := persist.Open(nodeDir, persist.WithEvents(ev))
		if err != nil {
			return nil, nil, err
		}
		f := repl.NewFollower(store, "",
			repl.WithBackoff(5*time.Millisecond, 100*time.Millisecond),
			repl.WithEvents(ev))
		peers := map[string]string{}
		for j := range urls {
			if j != i {
				peers[ids[j]] = urls[j]
			}
		}
		node, err := repl.NewNode(store, f, repl.NodeConfig{
			ID: ids[i], SelfURL: urls[i], Peers: peers, Lease: lease, Events: ev,
		})
		if err != nil {
			store.Close()
			return nil, nil, err
		}
		srv := server.NewClusterMember(store, f, node)
		srv.SetEvents(ev)
		if program != "" {
			if err := srv.SetProgram(program); err != nil {
				store.Close()
				return nil, nil, err
			}
		}
		if strategy != "" {
			if err := srv.SetStrategy(strategy); err != nil {
				store.Close()
				return nil, nil, err
			}
		}
		mctx, mcancel := context.WithCancel(ctx)
		go node.Run(mctx)
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		var stopOnce sync.Once
		stop := func() {
			stopOnce.Do(func() {
				mcancel()
				srv.StopStreams()
				hs.Close()
				store.Close()
			})
		}
		cleanups = append(cleanups, stop)
		members = append(members, &fmember{id: ids[i], url: urls[i], stop: stop})
	}
	return members, cleanup, nil
}

// waitLeader polls the members' /v1/healthz until one reports itself
// an unsuspended leader.
func waitLeader(ctx context.Context, urls []string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		for _, u := range urls {
			hctx, hcancel := context.WithTimeout(ctx, time.Second)
			h, err := (&server.Client{BaseURL: u}).Healthz(hctx)
			hcancel()
			if err == nil && h.Role == "leader" && h.Cluster != nil && !h.Cluster.Suspended {
				return u, nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return "", fmt.Errorf("no leader elected within %v", timeout)
}

// runFailoverScenario drives one scenario against a self-spawned
// three-member replica set and kills the leader a third of the way
// into the measured window. The runner follows the 421 redirects and
// healthz re-discovery to the newly elected leader, so the result's
// timeline shows throughput before, during and after the failover;
// the summary lands in the report's failover section.
func runFailoverScenario(ctx context.Context, sc *load.Scenario, lease time.Duration) (*load.ScenarioResult, error) {
	members, cleanup, err := spawnFailoverSet(ctx, 3, lease, sc.Program, sc.Strategy)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	urls := make([]string, len(members))
	for i, m := range members {
		urls[i] = m.url
	}
	leaderURL, err := waitLeader(ctx, urls, 30*lease)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "  replica set up, leader %s (lease %v)\n", leaderURL, lease)

	r := &load.Runner{
		Client:       &server.Client{BaseURL: leaderURL},
		FollowLeader: true,
		Members:      urls,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	// The program is installed member-locally at spawn; the runner's
	// own setup re-installs it on the leader, which is idempotent.
	window := sc.DurationParsed()
	killAfter := window / 3
	type killInfo struct {
		at  time.Time
		url string
	}
	killed := make(chan killInfo, 1)
	go func() {
		for r.MeasureStart().IsZero() {
			select {
			case <-ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
		start := r.MeasureStart()
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Until(start.Add(killAfter))):
		}
		cur, err := waitLeader(ctx, urls, 2*lease)
		if err != nil {
			cur = leaderURL
		}
		for _, m := range members {
			if m.url == cur {
				fmt.Fprintf(os.Stderr, "  killing leader %s (%s) mid-run\n", m.id, m.url)
				m.stop()
				killed <- killInfo{at: time.Now(), url: cur}
				return
			}
		}
	}()

	res, err := r.Run(ctx, sc)
	if err != nil {
		return nil, err
	}
	var ki killInfo
	select {
	case ki = <-killed:
	default:
		return nil, fmt.Errorf("failover drill: the leader was never killed (window %v too short?)", window)
	}

	fr := &load.FailoverResult{
		KillAtSeconds:   ki.at.Sub(r.MeasureStart()).Seconds(),
		RecoverySeconds: -1,
	}
	if rts := r.Retargets(); len(rts) > 0 {
		fr.NewLeaderURL = rts[len(rts)-1].URL
	}
	// Phase rates come from the per-second timeline: before the kill,
	// the outage (kill to the first post-kill second with successful
	// ops), and after recovery.
	killBucket := int(fr.KillAtSeconds)
	recBucket := -1
	for _, b := range res.Timeline {
		if b.Second > killBucket && b.Ok > 0 {
			recBucket = b.Second
			break
		}
	}
	sumOk := func(from, to int) (total int64, secs int) { // [from, to)
		for _, b := range res.Timeline {
			if b.Second >= from && b.Second < to {
				total += b.Ok
				secs++
			}
		}
		return total, secs
	}
	if n, secs := sumOk(0, killBucket); secs > 0 {
		fr.BeforeOkRate = float64(n) / float64(secs)
	}
	if recBucket >= 0 {
		fr.RecoverySeconds = float64(recBucket) - fr.KillAtSeconds
		if n, secs := sumOk(killBucket+1, recBucket); secs > 0 {
			fr.DuringOkRate = float64(n) / float64(secs)
		}
		if n, secs := sumOk(recBucket, len(res.Timeline)); secs > 0 {
			fr.AfterOkRate = float64(n) / float64(secs)
		}
	}
	res.Failover = fr
	fmt.Fprintf(os.Stderr, "  failover: kill at %.1fs, writes back after %.1fs; ok-rate %.0f/s -> %.0f/s -> %.0f/s\n",
		fr.KillAtSeconds, fr.RecoverySeconds, fr.BeforeOkRate, fr.DuringOkRate, fr.AfterOkRate)
	return res, nil
}

// loadScenarios returns the built-in suite, or the *.json files of a
// directory when -dir is set.
func loadScenarios(dir string) ([]load.Scenario, error) {
	if dir == "" {
		return load.DefaultScenarios(), nil
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no *.json scenario files in %s", dir)
	}
	sort.Strings(paths)
	var out []load.Scenario
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		sc, err := load.ParseScenario(p, data)
		if err != nil {
			return nil, err
		}
		out = append(out, *sc)
	}
	return out, nil
}

// selectScenarios applies -all / -scenario.
func selectScenarios(scenarios []load.Scenario, all bool, names string) ([]load.Scenario, error) {
	if all || names == "" {
		return scenarios, nil
	}
	var out []load.Scenario
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		sc := load.ScenarioByName(scenarios, name)
		if sc == nil {
			return nil, fmt.Errorf("unknown scenario %q (use -list)", name)
		}
		out = append(out, *sc)
	}
	return out, nil
}

// runCheck validates a report file (the CI gate).
func runCheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	r, err := load.ValidateReport(data)
	if err != nil {
		return err
	}
	fmt.Printf("%s: valid %s report — %d scenarios, families: %s\n",
		path, r.Schema, len(r.Scenarios), strings.Join(r.Families(), ", "))
	return nil
}

// runDump writes the built-in scenarios as one JSON file each, the
// canonical serialized form committed under scenarios/.
func runDump(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sc := range load.DefaultScenarios() {
		data, err := json.MarshalIndent(sc, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, sc.Name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

// oneLine renders a result for the progress log.
func oneLine(r *load.ScenarioResult) string {
	return fmt.Sprintf("offered %.0f/s achieved %.0f/s  p50 %.1fms p95 %.1fms p99 %.1fms  errors %d",
		r.OfferedRate, r.AchievedRate, r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Errors)
}
