// Command parkd serves a persistent PARK active database over HTTP.
//
// Usage:
//
//	parkd -dir ./data [-addr :7474] [-program rules.park | -triggers ddl.sql]
//	      [-strategy inertia] [-follow http://leader:7474] [-pprof]
//	      [-node-id a -advertise http://host:7474 -peers b=http://...,c=http://...]
//	      [-lease 3s] [-failpoints] [-probe-interval 3s]
//	      [-log-format text|json] [-log-level info]
//	      [-trace-buffer 64] [-slow-txn 250ms]
//	      [-read-timeout 30s] [-write-timeout 0]
//	      [-idle-timeout 2m] [-shutdown-timeout 10s]
//
// The store directory holds the snapshot and write-ahead log; state
// survives restarts. See internal/server for the JSON API and
// docs/OBSERVABILITY.md for the metrics (/v1/metrics) and profiling
// (-pprof) surfaces.
//
// parkd logs structured records (log/slog) to stderr: one access-log
// line per request carrying its X-Park-Trace-Id, plus commit, degrade
// and replication events from the store. -log-format selects the
// text or JSON rendering and -log-level the minimum severity
// (per-transaction commit records are logged at debug). The
// transaction flight recorder retains the last -trace-buffer traces
// (0 disables recording) plus any transaction slower than -slow-txn;
// fetch them with GET /v1/txns/{seq}/trace or `parkcli txn trace`.
// The -events journal retains the last N lifecycle events (elections,
// fence raises, degraded transitions, checkpoints, replication
// stalls) for GET /v1/events; per-rule profiling is served at
// GET /v1/rules/stats (`parkcli rules top`) and the aggregated
// replica-set view at GET /v1/cluster (`parkcli cluster status`).
// See docs/OBSERVABILITY.md.
//
// With -follow, parkd runs as a read-only replica of the leader at
// the given base URL: it bootstraps from the leader's snapshot,
// replays its committed transactions in order (resuming across
// restarts of either side), serves queries locally and answers write
// requests with 421 plus an X-Park-Leader hint. -program, -triggers
// and -strategy are rejected in follower mode — the replicated state
// is the leader's. See docs/REPLICATION.md and docs/OPERATIONS.md.
//
// With -node-id/-advertise/-peers, parkd runs as a member of a
// replica set with automatic failover: members elect a leader by
// lease-based election (highest applied sequence wins), the leader
// streams to the others, and if it dies the followers promote a new
// leader within roughly two lease durations. Writes to non-leaders
// answer 421 with the current leader's URL; every member serves
// reads. Deposed leaders are fenced by epoch and rejoin as followers.
// -lease tunes the failover detection window. Give all members the
// same -program so whichever is leader evaluates the same rules. See
// docs/REPLICATION.md and the failover runbook in docs/OPERATIONS.md.
//
// If the disk fails underneath the store (failed fsync, ENOSPC), parkd
// degrades to read-only instead of crashing: writes answer 503 with a
// Retry-After header while a background probe (-probe-interval)
// retests the disk, and /v1/healthz reports the state; reads, queries
// and replication streaming keep serving. -failpoints (drills and
// tests only) lets an operator inject such faults on a live process
// via /v1/debug/failpoint. See docs/OPERATIONS.md.
//
// parkd shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests get -shutdown-timeout to finish, and
// the store is closed (syncing the WAL) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/events"
	"repro/internal/flight"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/server"
)

// config captures the daemon's startup parameters.
type config struct {
	dir      string
	program  string // rule-language program file
	triggers string // trigger-DDL program file
	strategy string
	follow   string // leader base URL; non-empty selects replica mode

	// Replica-set (automatic failover) mode: a non-empty nodeID selects
	// it. Every member runs with the same -peers roster; leadership is
	// decided by lease-based election, not by flags.
	nodeID    string
	advertise string        // this member's base URL as peers reach it
	peers     string        // comma list of id=url for the other members
	lease     time.Duration // leader lease duration (0 = repl.DefaultLease)

	pprof           bool
	eventBuf        int           // event-journal capacity (0 disables /v1/events)
	failpoints      bool          // expose /v1/debug/failpoint (fault drills)
	probeInterval   time.Duration // degraded-mode disk re-probe cadence
	traceBuffer     int           // flight-recorder window (traces; 0 disables)
	slowTxn         time.Duration // slow-transaction trace threshold (0 = store default)
	readTimeout     time.Duration
	writeTimeout    time.Duration
	idleTimeout     time.Duration
	shutdownTimeout time.Duration

	// logger receives the structured process log; nil (as in tests)
	// falls back to slog.Default().
	logger *slog.Logger
}

// buildLogger constructs the process logger from the -log-format and
// -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// parsePeers decodes the -peers roster ("a=http://h:1,b=http://h:2")
// into an id → base-URL map.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url, ok := strings.Cut(entry, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("parkd: bad -peers entry %q (want id=url)", entry)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("parkd: duplicate peer id %q in -peers", id)
		}
		peers[id] = url
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("parkd: -peers lists no members")
	}
	return peers, nil
}

// setup opens the store and builds the configured server. The caller
// owns closing the returned store and, in follower mode, running the
// returned follower (nil otherwise). In replica-set mode the returned
// server's Node() coordinates failover and the caller runs it (the
// node manages the follower itself, so the returned follower is nil).
func setup(cfg config) (*server.Server, *persist.Store, *repl.Follower, error) {
	cluster := cfg.nodeID != "" || cfg.advertise != "" || cfg.peers != ""
	if cluster {
		if cfg.follow != "" {
			return nil, nil, nil, fmt.Errorf("parkd: -follow is incompatible with -node-id/-peers (a replica-set member discovers its leader by election; use one or the other)")
		}
		if cfg.nodeID == "" || cfg.advertise == "" || cfg.peers == "" {
			return nil, nil, nil, fmt.Errorf("parkd: replica-set mode needs all of -node-id, -advertise and -peers")
		}
	}
	if cfg.follow != "" {
		if cfg.program != "" || cfg.triggers != "" {
			return nil, nil, nil, fmt.Errorf("parkd: -follow is incompatible with -program/-triggers (replicas take their state from the leader)")
		}
		if cfg.strategy != "" && cfg.strategy != "inertia" {
			return nil, nil, nil, fmt.Errorf("parkd: -follow is incompatible with -strategy (replicas do not evaluate rules)")
		}
	}
	logger := cfg.logger
	if logger == nil {
		logger = slog.Default()
	}
	// The event journal collects lifecycle events (elections, fences,
	// degraded transitions, checkpoints, replication stalls) from every
	// layer and serves them over /v1/events. A nil journal is a no-op
	// at each emission site, so -events 0 simply disables the endpoint.
	var ev *events.Log
	if cfg.eventBuf != 0 {
		ev = events.NewLog(cfg.eventBuf)
		ev.SetNodeID(cfg.nodeID)
	}
	// The store logs through slog only; the legacy printf sink would
	// duplicate the degrade/recover events the slogger already carries.
	popts := []persist.Option{
		persist.WithSlog(logger),
		persist.WithTraceBuffer(cfg.traceBuffer),
		persist.WithEvents(ev),
	}
	if cfg.slowTxn != 0 {
		popts = append(popts, persist.WithSlowThreshold(cfg.slowTxn))
	}
	if cfg.probeInterval > 0 {
		popts = append(popts, persist.WithProbeInterval(cfg.probeInterval))
	}
	// -failpoints routes all store I/O through a fault-injection
	// filesystem controllable over /v1/debug/failpoint, for operator
	// drills and the replication smoke test. Off by default: faults can
	// only be injected when explicitly armed at startup.
	var ffs *persist.FaultFS
	if cfg.failpoints {
		ffs = persist.NewFaultFS(persist.OSFS())
		popts = append(popts, persist.WithFS(ffs))
	}
	store, err := persist.Open(cfg.dir, popts...)
	if err != nil {
		return nil, nil, nil, err
	}
	fail := func(err error) (*server.Server, *persist.Store, *repl.Follower, error) {
		store.Close()
		return nil, nil, nil, err
	}
	if cfg.follow != "" {
		follower := repl.NewFollower(store, cfg.follow, repl.WithLogger(log.Printf), repl.WithEvents(ev))
		srv := server.NewReplica(store, follower, cfg.follow)
		srv.SetLogger(logger)
		if ev != nil {
			srv.SetEvents(ev)
		}
		if ffs != nil {
			srv.EnableFailpoints(ffs)
		}
		return srv, store, follower, nil
	}
	var srv *server.Server
	if cluster {
		peers, err := parsePeers(cfg.peers)
		if err != nil {
			return fail(err)
		}
		// The member starts with no known leader; the node's election
		// loop discovers or elects one and retargets the follower.
		follower := repl.NewFollower(store, "", repl.WithLogger(log.Printf), repl.WithEvents(ev))
		node, err := repl.NewNode(store, follower, repl.NodeConfig{
			ID:      cfg.nodeID,
			SelfURL: cfg.advertise,
			Peers:   peers,
			Lease:   cfg.lease,
			Logger:  logger,
			Events:  ev,
		})
		if err != nil {
			return fail(err)
		}
		srv = server.NewClusterMember(store, follower, node)
	} else {
		srv = server.New(store)
	}
	srv.SetLogger(logger)
	if ev != nil {
		srv.SetEvents(ev)
	}
	if ffs != nil {
		srv.EnableFailpoints(ffs)
	}
	if cfg.program != "" && cfg.triggers != "" {
		return fail(fmt.Errorf("parkd: use only one of -program and -triggers"))
	}
	if cfg.program != "" {
		src, err := os.ReadFile(cfg.program)
		if err != nil {
			return fail(err)
		}
		if err := srv.SetProgram(string(src)); err != nil {
			return fail(fmt.Errorf("program: %w", err))
		}
	}
	if cfg.triggers != "" {
		src, err := os.ReadFile(cfg.triggers)
		if err != nil {
			return fail(err)
		}
		if err := srv.SetTriggerProgram(string(src)); err != nil {
			return fail(fmt.Errorf("triggers: %w", err))
		}
	}
	if cfg.strategy != "" {
		if err := srv.SetStrategy(cfg.strategy); err != nil {
			return fail(err)
		}
	}
	return srv, store, nil, nil
}

// buildHandler mounts the API handler and, when enabled, the
// net/http/pprof endpoints under /debug/pprof/.
func buildHandler(srv *server.Server, withPprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// newHTTPServer builds the http.Server with the configured timeouts.
// The write timeout defaults to 0 (disabled) because /v1/watch is a
// long-lived SSE stream; setting it bounds every response including
// watch streams.
func newHTTPServer(addr string, h http.Handler, cfg config) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
}

// serve runs the HTTP server until ctx is cancelled (or the listener
// fails), then shuts down gracefully within cfg.shutdownTimeout.
func serve(ctx context.Context, hs *http.Server, cfg config) error {
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("parkd: shutting down (waiting up to %v for in-flight requests)", cfg.shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		// Long-lived connections (e.g. /v1/watch streams) that outlive
		// the grace period are cut hard.
		hs.Close()
		return fmt.Errorf("parkd: forced shutdown: %w", err)
	}
	return nil
}

func main() {
	var cfg config
	addr := flag.String("addr", ":7474", "listen address")
	flag.StringVar(&cfg.dir, "dir", "", "store directory (required)")
	flag.StringVar(&cfg.program, "program", "", "rule program file to install at startup")
	flag.StringVar(&cfg.triggers, "triggers", "", "trigger-DDL program file to install at startup")
	flag.StringVar(&cfg.strategy, "strategy", "inertia", "default conflict resolution strategy")
	flag.StringVar(&cfg.follow, "follow", "", "leader base URL; run as a read-only replica of that node")
	flag.StringVar(&cfg.nodeID, "node-id", "", "replica-set member id; selects automatic-failover mode (requires -advertise and -peers)")
	flag.StringVar(&cfg.advertise, "advertise", "", "base URL peers use to reach this member (replica-set mode)")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated id=url roster of the replica set's members (self may be included)")
	flag.DurationVar(&cfg.lease, "lease", 0, "leader lease duration in replica-set mode (0 uses the default, "+repl.DefaultLease.String()+")")
	flag.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.IntVar(&cfg.eventBuf, "events", events.DefaultCap, "event-journal capacity: retain the last N lifecycle events for /v1/events (0 disables)")
	flag.BoolVar(&cfg.failpoints, "failpoints", false, "route store I/O through a fault-injection filesystem controllable via /v1/debug/failpoint (fault drills only)")
	flag.DurationVar(&cfg.probeInterval, "probe-interval", 0, "disk re-probe interval while degraded to read-only (0 uses the store default)")
	flag.IntVar(&cfg.traceBuffer, "trace-buffer", flight.DefaultRecent, "flight-recorder window: retain traces of the last N transactions (0 disables recording)")
	flag.DurationVar(&cfg.slowTxn, "slow-txn", flight.DefaultSlowThreshold, "retain the trace of any transaction slower than this, beyond the -trace-buffer window")
	logFormat := flag.String("log-format", "text", "structured log rendering: text or json")
	logLevel := flag.String("log-level", "info", "minimum log severity: debug, info, warn or error (per-txn commit records log at debug)")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 30*time.Second, "max duration for reading a request (0 disables)")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 0, "max duration for writing a response (0 disables; >0 also bounds /v1/watch streams)")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")
	flag.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	flag.Parse()
	if cfg.dir == "" {
		fmt.Fprintln(os.Stderr, "parkd: -dir is required")
		os.Exit(2)
	}
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parkd: %v\n", err)
		os.Exit(2)
	}
	cfg.logger = logger
	// Route the remaining log.Printf call sites (and the follower's
	// lifecycle log) through the same structured handler.
	slog.SetDefault(logger)
	srv, store, follower, err := setup(cfg)
	if err != nil {
		log.Fatalf("parkd: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// In replica mode the follower replicates in the background for
	// the whole life of the process; it stops with the same signal
	// context that stops the HTTP server. In replica-set mode the
	// failover node owns the follower and runs it itself.
	replDone := make(chan struct{})
	if node := srv.Node(); node != nil {
		go func() {
			defer close(replDone)
			if err := node.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("parkd: cluster node stopped: %v", err)
			}
		}()
		log.Printf("parkd: replica-set member %s advertising %s (lease %v, members %v)",
			node.ID(), node.SelfURL(), node.Lease(), node.MemberIDs())
	} else if follower != nil {
		go func() {
			defer close(replDone)
			if err := follower.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("parkd: replication stopped: %v", err)
			}
		}()
		log.Printf("parkd: following leader at %s", cfg.follow)
	} else {
		close(replDone)
	}

	hs := newHTTPServer(*addr, buildHandler(srv, cfg.pprof), cfg)
	// Abort open /v1/watch and /v1/repl/stream responses when graceful
	// shutdown begins: they are unbounded by design and would otherwise
	// hold Shutdown for the entire grace period.
	hs.RegisterOnShutdown(srv.StopStreams)
	log.Printf("parkd: serving store %s on %s (%d facts, pprof=%v)", cfg.dir, *addr, store.Len(), cfg.pprof)
	serveErr := serve(ctx, hs, cfg)
	// Wait for the follower to stop applying before closing the store.
	stop()
	<-replDone
	// Close the store regardless of how serving ended, so the WAL is
	// synced before the process exits.
	if err := store.Close(); err != nil {
		log.Printf("parkd: store close: %v", err)
	}
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		log.Fatalf("parkd: %v", serveErr)
	}
	log.Printf("parkd: store closed, bye")
}
