// Command parkd serves a persistent PARK active database over HTTP.
//
// Usage:
//
//	parkd -dir ./data [-addr :7474] [-program rules.park | -triggers ddl.sql] [-strategy inertia]
//
// The store directory holds the snapshot and write-ahead log; state
// survives restarts. See internal/server for the JSON API.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/persist"
	"repro/internal/server"
)

// config captures the daemon's startup parameters.
type config struct {
	dir      string
	program  string // rule-language program file
	triggers string // trigger-DDL program file
	strategy string
}

// setup opens the store and builds the configured server. The caller
// owns closing the returned store.
func setup(cfg config) (*server.Server, *persist.Store, error) {
	store, err := persist.Open(cfg.dir)
	if err != nil {
		return nil, nil, err
	}
	srv := server.New(store)
	fail := func(err error) (*server.Server, *persist.Store, error) {
		store.Close()
		return nil, nil, err
	}
	if cfg.program != "" && cfg.triggers != "" {
		return fail(fmt.Errorf("parkd: use only one of -program and -triggers"))
	}
	if cfg.program != "" {
		src, err := os.ReadFile(cfg.program)
		if err != nil {
			return fail(err)
		}
		if err := srv.SetProgram(string(src)); err != nil {
			return fail(fmt.Errorf("program: %w", err))
		}
	}
	if cfg.triggers != "" {
		src, err := os.ReadFile(cfg.triggers)
		if err != nil {
			return fail(err)
		}
		if err := srv.SetTriggerProgram(string(src)); err != nil {
			return fail(fmt.Errorf("triggers: %w", err))
		}
	}
	if cfg.strategy != "" {
		if err := srv.SetStrategy(cfg.strategy); err != nil {
			return fail(err)
		}
	}
	return srv, store, nil
}

func main() {
	var cfg config
	addr := flag.String("addr", ":7474", "listen address")
	flag.StringVar(&cfg.dir, "dir", "", "store directory (required)")
	flag.StringVar(&cfg.program, "program", "", "rule program file to install at startup")
	flag.StringVar(&cfg.triggers, "triggers", "", "trigger-DDL program file to install at startup")
	flag.StringVar(&cfg.strategy, "strategy", "inertia", "default conflict resolution strategy")
	flag.Parse()
	if cfg.dir == "" {
		fmt.Fprintln(os.Stderr, "parkd: -dir is required")
		os.Exit(2)
	}
	srv, store, err := setup(cfg)
	if err != nil {
		log.Fatalf("parkd: %v", err)
	}
	defer store.Close()

	log.Printf("parkd: serving store %s on %s (%d facts)", cfg.dir, *addr, store.Len())
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("parkd: %v", err)
	}
}
