package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/server"
)

func TestSetupWithRuleProgram(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "rules.park")
	if err := os.WriteFile(prog, []byte(`p(X) -> +q(X).`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, store, err := setup(config{dir: filepath.Join(dir, "data"), program: prog, strategy: "priority"})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &server.Client{BaseURL: ts.URL}
	resp, err := c.Program(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rules != 1 || resp.Strategy != "priority" {
		t.Fatalf("program = %+v", resp)
	}
	tx, err := c.Transact(context.Background(), `+p(a).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Facts) != 2 {
		t.Fatalf("facts = %v", tx.Facts)
	}
}

func TestSetupWithTriggerProgram(t *testing.T) {
	dir := t.TempDir()
	ddl := filepath.Join(dir, "ddl.sql")
	if err := os.WriteFile(ddl, []byte(`CREATE RULE r WHEN p(X) DO INSERT q(X);`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, store, err := setup(config{dir: filepath.Join(dir, "data"), triggers: ddl})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	_ = srv
}

func TestSetupErrors(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "x.park")
	os.WriteFile(f, []byte(`p -> +q.`), 0o644)
	if _, _, err := setup(config{dir: filepath.Join(dir, "d1"), program: f, triggers: f}); err == nil {
		t.Fatal("both program kinds accepted")
	}
	if _, _, err := setup(config{dir: filepath.Join(dir, "d2"), program: filepath.Join(dir, "missing")}); err == nil {
		t.Fatal("missing program file accepted")
	}
	bad := filepath.Join(dir, "bad.park")
	os.WriteFile(bad, []byte(`p(X) -> +q(Y).`), 0o644)
	if _, _, err := setup(config{dir: filepath.Join(dir, "d3"), program: bad}); err == nil {
		t.Fatal("unsafe program accepted")
	}
	if _, _, err := setup(config{dir: filepath.Join(dir, "d4"), strategy: "bogus"}); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}
