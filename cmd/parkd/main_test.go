package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestSetupWithRuleProgram(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "rules.park")
	if err := os.WriteFile(prog, []byte(`p(X) -> +q(X).`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, store, _, err := setup(config{dir: filepath.Join(dir, "data"), program: prog, strategy: "priority"})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &server.Client{BaseURL: ts.URL}
	resp, err := c.Program(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rules != 1 || resp.Strategy != "priority" {
		t.Fatalf("program = %+v", resp)
	}
	tx, err := c.Transact(context.Background(), `+p(a).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Facts) != 2 {
		t.Fatalf("facts = %v", tx.Facts)
	}
}

func TestSetupWithTriggerProgram(t *testing.T) {
	dir := t.TempDir()
	ddl := filepath.Join(dir, "ddl.sql")
	if err := os.WriteFile(ddl, []byte(`CREATE RULE r WHEN p(X) DO INSERT q(X);`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, store, _, err := setup(config{dir: filepath.Join(dir, "data"), triggers: ddl})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	_ = srv
}

func TestBuildHandlerPprofGating(t *testing.T) {
	srv, store, _, err := setup(config{dir: filepath.Join(t.TempDir(), "data")})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	get := func(h http.Handler, path string) int {
		ts := httptest.NewServer(h)
		defer ts.Close()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	without := buildHandler(srv, false)
	with := buildHandler(srv, true)
	if code := get(without, "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof disabled: /debug/pprof/ = %d, want 404", code)
	}
	if code := get(with, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof enabled: /debug/pprof/ = %d, want 200", code)
	}
	// The API (including /v1/metrics) is mounted either way.
	if code := get(without, "/v1/metrics"); code != http.StatusOK {
		t.Fatalf("/v1/metrics = %d, want 200", code)
	}
	if code := get(with, "/v1/metrics"); code != http.StatusOK {
		t.Fatalf("/v1/metrics (pprof build) = %d, want 200", code)
	}
}

func TestNewHTTPServerTimeouts(t *testing.T) {
	cfg := config{
		readTimeout:  7 * time.Second,
		writeTimeout: 3 * time.Second,
		idleTimeout:  11 * time.Second,
	}
	hs := newHTTPServer(":0", http.NotFoundHandler(), cfg)
	if hs.ReadTimeout != 7*time.Second || hs.WriteTimeout != 3*time.Second ||
		hs.IdleTimeout != 11*time.Second || hs.ReadHeaderTimeout == 0 {
		t.Fatalf("server timeouts not applied: %+v", hs)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	cfg := config{shutdownTimeout: 5 * time.Second}
	hs := newHTTPServer("127.0.0.1:0", http.NotFoundHandler(), cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, hs, cfg) }()
	time.Sleep(50 * time.Millisecond) // let ListenAndServe bind
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after context cancellation")
	}
}

// TestShutdownRequestsGet503 pins the graceful-shutdown contract: a
// transaction racing the store close must get 503 Service Unavailable
// (the client should retry elsewhere), not a 422 "engine error", and
// must not be counted as an engine failure in the metrics.
func TestShutdownRequestsGet503(t *testing.T) {
	srv, store, _, err := setup(config{dir: filepath.Join(t.TempDir(), "data")})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(buildHandler(srv, false))
	defer ts.Close()
	c := &server.Client{BaseURL: ts.URL}
	ctx := context.Background()
	if _, err := c.Transact(ctx, `+p(a).`); err != nil {
		t.Fatal(err)
	}

	// main closes the store after serve returns; requests on
	// still-open connections race that close.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = c.Transact(ctx, `+p(b).`)
	if err == nil || !strings.Contains(err.Error(), "HTTP 503") {
		t.Fatalf("transaction after close = %v, want HTTP 503", err)
	}
	if err := c.Checkpoint(ctx); err == nil || !strings.Contains(err.Error(), "HTTP 503") {
		t.Fatalf("checkpoint after close = %v, want HTTP 503", err)
	}
	// Shutdown must not pollute the engine error counter.
	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "park_engine_errors_total") && !strings.HasSuffix(line, " 0") {
			t.Fatalf("engine errors after shutdown = %q, want 0", line)
		}
	}
}

// TestSetupFollowerMode pins the replica-mode contract: state-shaping
// flags are rejected (the leader owns the state), and the resulting
// server refuses writes with 421 and a leader hint while still
// serving reads.
func TestSetupFollowerMode(t *testing.T) {
	dir := t.TempDir()
	leaderURL := "http://leader.example:7474"
	prog := filepath.Join(dir, "rules.park")
	os.WriteFile(prog, []byte(`p(X) -> +q(X).`), 0o644)
	if _, _, _, err := setup(config{dir: filepath.Join(dir, "d1"), follow: leaderURL, program: prog}); err == nil {
		t.Fatal("follower mode accepted -program")
	}
	if _, _, _, err := setup(config{dir: filepath.Join(dir, "d2"), follow: leaderURL, strategy: "priority"}); err == nil {
		t.Fatal("follower mode accepted -strategy")
	}
	srv, store, follower, err := setup(config{dir: filepath.Join(dir, "d3"), follow: leaderURL, strategy: "inertia"})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if follower == nil {
		t.Fatal("follower mode returned no follower")
	}
	ts := httptest.NewServer(buildHandler(srv, false))
	defer ts.Close()
	c := &server.Client{BaseURL: ts.URL}
	ctx := context.Background()
	if _, err := c.Transact(ctx, `+p(a).`); err == nil || !strings.Contains(err.Error(), "HTTP 421") {
		t.Fatalf("replica transaction = %v, want HTTP 421", err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/transaction", "application/json", strings.NewReader(`{"updates":"+p(a)."}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Park-Leader"); got != leaderURL {
		t.Fatalf("X-Park-Leader = %q, want %q", got, leaderURL)
	}
	// Reads keep working locally.
	if _, err := c.Database(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MetricsText(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSetupClusterMode pins the replica-set contract: the three
// cluster flags are all-or-nothing, -follow is mutually exclusive
// with them, the peers roster parses id=url entries, and a valid
// config yields a server with a failover node that starts as a
// follower (so writes are refused until a leader exists).
func TestSetupClusterMode(t *testing.T) {
	dir := t.TempDir()
	peers := "b=http://b.example:7474, c=http://c.example:7474"
	if _, _, _, err := setup(config{dir: filepath.Join(dir, "d1"), nodeID: "a"}); err == nil {
		t.Fatal("-node-id without -advertise/-peers accepted")
	}
	if _, _, _, err := setup(config{dir: filepath.Join(dir, "d2"), nodeID: "a",
		advertise: "http://a.example:7474", peers: peers, follow: "http://x:1"}); err == nil {
		t.Fatal("-follow combined with replica-set flags accepted")
	}
	if _, _, _, err := setup(config{dir: filepath.Join(dir, "d3"), nodeID: "a",
		advertise: "http://a.example:7474", peers: "b=,c=http://c:1"}); err == nil {
		t.Fatal("malformed -peers entry accepted")
	}
	if _, _, _, err := setup(config{dir: filepath.Join(dir, "d4"), nodeID: "a",
		advertise: "http://a.example:7474", peers: "b=http://b:1,b=http://b2:1"}); err == nil {
		t.Fatal("duplicate peer id accepted")
	}
	srv, store, follower, err := setup(config{dir: filepath.Join(dir, "d5"), nodeID: "a",
		advertise: "http://a.example:7474", peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if follower != nil {
		t.Fatal("cluster mode returned a follower for main to run (the node owns it)")
	}
	node := srv.Node()
	if node == nil {
		t.Fatal("cluster mode produced no failover node")
	}
	if node.IsLeader() {
		t.Fatal("member starts as leader without an election")
	}
	if got := len(node.MemberIDs()); got != 3 {
		t.Fatalf("member count = %d, want 3", got)
	}
	// No leader yet: writes answer 503 (retryable — an election is
	// pending), not 421 (no leader URL to point at).
	ts := httptest.NewServer(buildHandler(srv, false))
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/transaction", "application/json", strings.NewReader(`{"updates":"+p(a)."}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("write with no leader = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("leaderless 503 carries no Retry-After")
	}
}

func TestSetupErrors(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "x.park")
	os.WriteFile(f, []byte(`p -> +q.`), 0o644)
	if _, _, _, err := setup(config{dir: filepath.Join(dir, "d1"), program: f, triggers: f}); err == nil {
		t.Fatal("both program kinds accepted")
	}
	if _, _, _, err := setup(config{dir: filepath.Join(dir, "d2"), program: filepath.Join(dir, "missing")}); err == nil {
		t.Fatal("missing program file accepted")
	}
	bad := filepath.Join(dir, "bad.park")
	os.WriteFile(bad, []byte(`p(X) -> +q(Y).`), 0o644)
	if _, _, _, err := setup(config{dir: filepath.Join(dir, "d3"), program: bad}); err == nil {
		t.Fatal("unsafe program accepted")
	}
	if _, _, _, err := setup(config{dir: filepath.Join(dir, "d4"), strategy: "bogus"}); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}
