package park

import (
	"io"

	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/server"
)

// System-level types, re-exported so the durable store and the HTTP
// server are reachable from the public facade.
type (
	// Store is a durable database instance: snapshot + write-ahead
	// log, atomic transactions, crash recovery, history/time travel
	// and subscriptions. See examples/activedb and examples/monitor.
	Store = persist.Store
	// TxnRecord is one committed transaction's fact-level delta.
	TxnRecord = persist.TxnRecord
	// Server exposes a Store over an HTTP/JSON API.
	Server = server.Server
	// Client is the Go client for the HTTP API.
	Client = server.Client
	// Follower replicates a leader's committed transactions into a
	// local store (see docs/REPLICATION.md).
	Follower = repl.Follower
)

// OpenStore opens (or creates) a durable store directory, recovering
// state from the snapshot and write-ahead log.
func OpenStore(dir string) (*Store, error) { return persist.Open(dir) }

// RestoreStore initializes a new store directory from a Backup
// stream; it refuses to overwrite an existing store.
func RestoreStore(dir string, r io.Reader) error { return persist.Restore(dir, r) }

// NewServer wraps a store in the HTTP/JSON active-database server;
// install a program with SetProgram/SetTriggerProgram and serve
// Handler().
func NewServer(store *Store) *Server { return server.New(store) }

// NewFollower builds a replication client that replays the leader at
// leaderURL into store; start it with Run. The store must have no
// other writers.
func NewFollower(store *Store, leaderURL string) *Follower {
	return repl.NewFollower(store, leaderURL)
}

// NewReplicaServer wraps a replicated store in the read-only HTTP
// server: reads are served locally, writes answer 421 with the
// leader's address.
func NewReplicaServer(store *Store, follower *Follower, leaderURL string) *Server {
	return server.NewReplica(store, follower, leaderURL)
}
