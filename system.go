package park

import (
	"io"

	"repro/internal/persist"
	"repro/internal/server"
)

// System-level types, re-exported so the durable store and the HTTP
// server are reachable from the public facade.
type (
	// Store is a durable database instance: snapshot + write-ahead
	// log, atomic transactions, crash recovery, history/time travel
	// and subscriptions. See examples/activedb and examples/monitor.
	Store = persist.Store
	// TxnRecord is one committed transaction's fact-level delta.
	TxnRecord = persist.TxnRecord
	// Server exposes a Store over an HTTP/JSON API.
	Server = server.Server
	// Client is the Go client for the HTTP API.
	Client = server.Client
)

// OpenStore opens (or creates) a durable store directory, recovering
// state from the snapshot and write-ahead log.
func OpenStore(dir string) (*Store, error) { return persist.Open(dir) }

// RestoreStore initializes a new store directory from a Backup
// stream; it refuses to overwrite an existing store.
func RestoreStore(dir string, r io.Reader) error { return persist.Restore(dir, r) }

// NewServer wraps a store in the HTTP/JSON active-database server;
// install a program with SetProgram/SetTriggerProgram and serve
// Handler().
func NewServer(store *Store) *Server { return server.New(store) }
