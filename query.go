package park

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/parser"
)

// QueryResult holds the answers of a conjunctive query: the named
// variables (anonymous '_' variables are projected away) and one row
// of constant names per distinct answer, sorted lexicographically.
type QueryResult struct {
	Vars []string
	Rows [][]string
}

// Len returns the number of distinct answer rows.
func (r *QueryResult) Len() int { return len(r.Rows) }

// String renders the result like "X=a, S=100 | X=b, S=200".
func (r *QueryResult) String() string {
	if len(r.Rows) == 0 {
		return "no"
	}
	if len(r.Vars) == 0 {
		return "yes"
	}
	rows := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		parts := make([]string, len(r.Vars))
		for j, v := range r.Vars {
			parts[j] = v + "=" + row[j]
		}
		rows[i] = strings.Join(parts, ", ")
	}
	return strings.Join(rows, " | ")
}

// ParseQuery parses a conjunctive query ("p(X, b), !r(X)").
func ParseQuery(u *Universe, name, src string) (*core.Query, error) {
	return parser.ParseQuery(u, name, src)
}

// Query evaluates a conjunctive query against a database instance and
// returns the distinct answers over the query's named variables. A
// query with no variables returns zero or one empty row ("no"/"yes").
func Query(u *Universe, d *Database, src string) (*QueryResult, error) {
	q, err := parser.ParseQuery(u, "query", src)
	if err != nil {
		return nil, err
	}
	// Project away anonymous variables.
	var keep []int
	var vars []string
	for i, n := range q.VarNames {
		if n != "_" {
			keep = append(keep, i)
			vars = append(vars, n)
		}
	}
	seen := make(map[string]struct{})
	res := &QueryResult{Vars: vars}
	err = core.EvalQuery(u, d, q, func(binding []Sym) bool {
		row := make([]string, len(keep))
		for j, i := range keep {
			row[j] = u.Syms.Name(binding[i])
		}
		key := strings.Join(row, "\x00")
		if _, dup := seen[key]; dup {
			return true
		}
		seen[key] = struct{}{}
		res.Rows = append(res.Rows, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		for k := range res.Rows[i] {
			if res.Rows[i][k] != res.Rows[j][k] {
				return res.Rows[i][k] < res.Rows[j][k]
			}
		}
		return false
	})
	return res, nil
}

// QueryWithViews evaluates a query against the database extended with
// derived predicates ("views"): a conflict-free program of pure
// insertion rules — plain (possibly recursive) datalog — materialized
// with the inflationary fixpoint before the query runs. This is the
// situation the paper's introduction sets aside: "if no two
// conflicting rules are ever firable, some fixpoint semantics may be
// appropriate". Deletion rules and event literals are rejected.
func QueryWithViews(ctx context.Context, u *Universe, d *Database, viewSrc, querySrc string) (*QueryResult, error) {
	views, err := parser.ParseProgram(u, "views", viewSrc)
	if err != nil {
		return nil, err
	}
	for i := range views.Rules {
		r := &views.Rules[i]
		if r.Op != core.OpInsert {
			return nil, fmt.Errorf("view rule %s: views must only insert (found a deletion rule)", views.RuleLabel(i))
		}
		for _, lit := range r.Body {
			if lit.Kind == core.LitEvIns || lit.Kind == core.LitEvDel {
				return nil, fmt.Errorf("view rule %s: event literals are not allowed in views", views.RuleLabel(i))
			}
		}
	}
	materialized, err := baseline.Inflationary(ctx, u, views, d, nil)
	if err != nil {
		return nil, err
	}
	return Query(u, materialized, querySrc)
}
