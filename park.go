package park

import (
	"context"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/parser"
)

// Core model types, re-exported from the implementation packages so
// that the whole public surface lives under this one import path.
type (
	// Universe interns the symbols and ground atoms of one evaluation.
	Universe = core.Universe
	// Sym is an interned constant or predicate symbol.
	Sym = core.Sym
	// AID identifies an interned ground atom.
	AID = core.AID
	// Term is a constant or variable inside a rule.
	Term = core.Term
	// Atom is a predicate applied to terms.
	Atom = core.Atom
	// Literal is a body literal of a rule.
	Literal = core.Literal
	// Rule is one active rule.
	Rule = core.Rule
	// Program is a set of active rules.
	Program = core.Program
	// Database is a database instance (a set of ground atoms).
	Database = core.Database
	// Update is one transaction update (§4.3).
	Update = core.Update
	// HeadOp is the insert/delete action of a rule head.
	HeadOp = core.HeadOp
	// Grounding is a rule instance (rule, substitution).
	Grounding = core.Grounding
	// Conflict is a conflict triple (atom, ins, del).
	Conflict = core.Conflict
	// Decision is the outcome of conflict resolution.
	Decision = core.Decision
	// SelectInput is the context handed to a SELECT policy.
	SelectInput = core.SelectInput
	// Strategy is a conflict resolution policy (the SELECT parameter).
	Strategy = core.Strategy
	// StrategyFunc adapts a function to Strategy.
	StrategyFunc = core.StrategyFunc
	// Options configures an Engine.
	Options = core.Options
	// Engine evaluates the PARK semantics.
	Engine = core.Engine
	// Result is the outcome of one evaluation.
	Result = core.Result
	// ResolvedConflict pairs a conflict with its decision.
	ResolvedConflict = core.ResolvedConflict
	// Stats summarizes one evaluation.
	Stats = core.Stats
	// RunStats extends Stats with operational counters and timings
	// (Γ-step split, groundings, parallel shards, SELECT outcomes,
	// per-phase wall time).
	RunStats = core.RunStats
	// Tracer observes an evaluation.
	Tracer = core.Tracer
	// TextTracer prints paper-style step-by-step traces.
	TextTracer = core.TextTracer
	// CollectingTracer records all events for inspection.
	CollectingTracer = core.CollectingTracer
	// MarkedAtom is an atom with its +/- mark.
	MarkedAtom = core.MarkedAtom
	// Interp is an i-interpretation (visible to strategies).
	Interp = core.Interp
	// Explainer builds derivation trees after a run with
	// Options.Explain.
	Explainer = core.Explainer
	// Explanation is one node of a derivation tree.
	Explanation = core.Explanation
	// ExplainStatus classifies an atom in an explanation.
	ExplainStatus = core.ExplainStatus
	// Report is the static analysis report.
	Report = analysis.Report
	// SyntaxError is a parse error with source position.
	SyntaxError = parser.SyntaxError
	// Unit is a parsed mixed source (rules + facts + updates).
	Unit = parser.Unit
)

// Head operation, decision and explanation constants.
const (
	OpInsert     = core.OpInsert
	OpDelete     = core.OpDelete
	DecideInsert = core.DecideInsert
	DecideDelete = core.DecideDelete

	StatusBase     = core.StatusBase
	StatusInserted = core.StatusInserted
	StatusDeleted  = core.StatusDeleted
	StatusAbsent   = core.StatusAbsent
)

// ErrNoProgress is returned under Options.StrictConflicts when the
// paper's literal conflict definition cannot resolve an inconsistency.
var ErrNoProgress = core.ErrNoProgress

// NewUniverse returns an empty universe. All programs, databases and
// updates that are evaluated together must share one universe.
func NewUniverse() *Universe { return core.NewUniverse() }

// NewDatabase returns an empty database instance.
func NewDatabase() *Database { return core.NewDatabase() }

// NewEngine validates the program and returns an engine with the
// given conflict resolution strategy (nil means Inertia).
func NewEngine(u *Universe, p *Program, s Strategy, opts Options) (*Engine, error) {
	return core.NewEngine(u, p, s, opts)
}

// ParseProgram parses rule-language source containing only rules.
func ParseProgram(u *Universe, name, src string) (*Program, error) {
	return parser.ParseProgram(u, name, src)
}

// ParseDatabase parses rule-language source containing only ground facts.
func ParseDatabase(u *Universe, name, src string) (*Database, error) {
	return parser.ParseDatabase(u, name, src)
}

// ParseUpdates parses rule-language source containing only ground updates.
func ParseUpdates(u *Universe, name, src string) ([]Update, error) {
	return parser.ParseUpdates(u, name, src)
}

// ParseUnit parses a mixed source of rules, facts and updates.
func ParseUnit(u *Universe, name, src string) (*Unit, error) {
	return parser.ParseUnit(u, name, src)
}

// ParseTriggers parses the SQL-flavored trigger DDL (CREATE TRIGGER /
// CREATE RULE statements) and translates it to active rules.
func ParseTriggers(u *Universe, name, src string) (*Program, error) {
	return parser.ParseTriggers(u, name, src)
}

// Diff computes the update set transforming one database instance
// into another (insertions then deletions).
func Diff(before, after *Database) []Update { return core.Diff(before, after) }

// Analyze runs static analysis on a program: conflict potential,
// stratification, recursion and lints.
func Analyze(u *Universe, p *Program) *Report {
	return analysis.Analyze(u, p)
}

// Eval is the one-shot convenience API: parse the three sources into
// a fresh universe and compute PARK(P, D, U) under the strategy (nil
// means Inertia). It returns the result together with the universe
// used to intern symbols (needed to render atoms).
func Eval(ctx context.Context, programSrc, dbSrc, updatesSrc string, s Strategy, opts Options) (*Result, *Universe, error) {
	u := NewUniverse()
	prog, err := ParseProgram(u, "program", programSrc)
	if err != nil {
		return nil, nil, err
	}
	db, err := ParseDatabase(u, "database", dbSrc)
	if err != nil {
		return nil, nil, err
	}
	var ups []Update
	if strings.TrimSpace(updatesSrc) != "" {
		if ups, err = ParseUpdates(u, "updates", updatesSrc); err != nil {
			return nil, nil, err
		}
	}
	eng, err := NewEngine(u, prog, s, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := eng.Run(ctx, db, ups)
	if err != nil {
		return nil, nil, err
	}
	return res, u, nil
}

// FormatDatabase renders a database instance as "{a, p(b), ...}" with
// atoms sorted by their textual form.
func FormatDatabase(u *Universe, d *Database) string {
	ids := append([]AID(nil), d.Atoms()...)
	u.SortAtoms(ids)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, id := range ids {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(u.AtomString(id))
	}
	sb.WriteByte('}')
	return sb.String()
}

// FormatUpdates renders an update set as "{+a, -p(b)}" in given order.
func FormatUpdates(u *Universe, ups []Update) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, up := range ups {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(up.Op.String())
		sb.WriteString(u.AtomString(up.Atom))
	}
	sb.WriteByte('}')
	return sb.String()
}
