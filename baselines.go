package park

import (
	"context"

	"repro/internal/baseline"
)

// Baseline semantics, re-exported from internal/baseline for
// comparison experiments (DESIGN.md B4 and B8).
type (
	// SequentialBaseline is the order-dependent rule-at-a-time
	// semantics classic production systems use.
	SequentialBaseline = baseline.Sequential
	// PostHocStats reports what post-hoc elimination removed.
	PostHocStats = baseline.PostHocStats
)

// ErrNonTermination is returned by the sequential baseline when its
// firing limit is exhausted.
var ErrNonTermination = baseline.ErrNonTermination

// PostHoc computes the §4.1 strawman semantics: inflationary fixpoint
// ignoring conflicts, then elimination of conflicting pairs. The
// paper's P2/P3 show it produces wrong results; it exists here as the
// comparison baseline.
func PostHoc(ctx context.Context, u *Universe, p *Program, d *Database, updates []Update) (*Database, PostHocStats, error) {
	return baseline.PostHoc(ctx, u, p, d, updates)
}

// Inflationary computes the plain inflationary fixpoint semantics
// with no conflict handling; on conflict-free programs it coincides
// with PARK.
func Inflationary(ctx context.Context, u *Universe, p *Program, d *Database, updates []Update) (*Database, error) {
	return baseline.Inflationary(ctx, u, p, d, updates)
}

// SequentialDistinctResults runs the sequential baseline under n
// random firing orders and returns the distinct result states — the
// ambiguity measurement of experiment B8 (PARK always yields exactly
// one).
func SequentialDistinctResults(ctx context.Context, u *Universe, p *Program, d *Database, updates []Update, n, maxFirings int) (map[string]int, int, error) {
	return baseline.DistinctResults(ctx, u, p, d, updates, n, maxFirings)
}
