package park_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Every example must build and run to completion. Each is a
// self-contained main that exercises the public API on a scenario
// from the paper's motivating domains; a non-zero exit or a panic
// fails the test.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn go run")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d examples", len(entries))
	}
	expectations := map[string]string{
		"quickstart": "P1 result: {p, q}",
		"graphmaint": "final graph: {p(a), p(b), p(c), q(a, b), q(b, a), q(b, c), q(c, b)}",
		"payroll":    "ann's payroll kept:  true",
		"voting":     "both alarms stay on",
		"ecacascade": "conflict on order(o1, widget) -> delete",
		"refinteg":   "conflict on order(o3, bob) -> insert",
		"triggers":   "conflict on order2(o2, 400) -> delete",
		"activedb":   "facts recovered from disk",
		"monitor":    "- page_operator(boiler)",
		"banking":    "conflict on hold(acct_vip) resolved: insert",
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if want, ok := expectations[name]; ok && !strings.Contains(string(out), want) {
				t.Fatalf("example %s output missing %q:\n%s", name, want, out)
			}
		})
	}
}
