// Active database end-to-end: this example runs the full system — a
// durable store (snapshot + write-ahead log), the HTTP server and its
// Go client — in one process, and drives an inventory scenario
// through it: rules react to order transactions, a conflict between a
// low-stock guard and a priority-customer rule is resolved by rule
// priority, and the state survives a simulated restart.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"repro/internal/persist"
	"repro/internal/server"
)

const rules = `
	% an order for an item in stock is accepted
	rule accept: +order(O, I), stock(I) -> +accepted(O).

	% accepted orders consume stock
	rule consume: accepted(O), order(O, I), stock(I) -> -stock(I).

	% low-stock guard (priority 1): items on the reorder list lose
	% their sellable flag
	rule guard priority 1: reorder(I), sellable(I) -> -sellable(I).

	% priority customers keep items sellable (priority 9)
	rule vip priority 9: vipwant(I) -> +sellable(I).
`

func main() {
	dir, err := os.MkdirTemp("", "parkdb-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- first "process": open store, serve, run transactions
	store, err := persist.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(store)
	ts := httptest.NewServer(srv.Handler())
	client := &server.Client{BaseURL: ts.URL}
	ctx := context.Background()

	if _, err := client.SetProgram(ctx, rules, "priority"); err != nil {
		log.Fatal(err)
	}

	// Seed inventory.
	if _, err := client.Transact(ctx, `
		+stock(widget). +stock(gadget).
		+sellable(widget). +sellable(gadget).
		+reorder(gadget). +vipwant(gadget).
	`); err != nil {
		log.Fatal(err)
	}

	// An order arrives.
	resp, err := client.Transact(ctx, `+order(o1, widget).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after order o1:")
	for _, f := range resp.Facts {
		fmt.Println("  ", f)
	}
	for _, c := range resp.Conflicts {
		fmt.Printf("  conflict on %s -> %s (vip beats low-stock guard)\n", c.Atom, c.Decision)
	}

	// Query through the API.
	q, err := client.Query(ctx, `sellable(I)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sellable items:", q.Rows)

	// Checkpoint and "crash".
	if err := client.Checkpoint(ctx); err != nil {
		log.Fatal(err)
	}
	ts.Close()
	store.Close()

	// --- second "process": reopen the same directory
	store2, err := persist.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer store2.Close()
	fmt.Printf("\nafter restart: %d facts recovered from disk\n", store2.Len())
	srv2 := server.New(store2)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client2 := &server.Client{BaseURL: ts2.URL}
	if _, err := client2.SetProgram(ctx, rules, "priority"); err != nil {
		log.Fatal(err)
	}
	resp, err = client2.Transact(ctx, `+order(o2, gadget).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after order o2 (post-restart):")
	for _, f := range resp.Facts {
		fmt.Println("  ", f)
	}
}
