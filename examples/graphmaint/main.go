// Graph maintenance: the paper's §4.2 running example. Rule r1 builds
// the complete graph over all p-nodes while r2 and r3 try to remove
// reflexive arcs and arcs implied by transitivity. Every q atom is
// conflicting; an application-specific SELECT policy decides, arc by
// arc, which side wins. The full paper-style trace is printed.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	park "repro"
)

func main() {
	u := park.NewUniverse()
	prog, err := park.ParseProgram(u, "graph", `
		rule r1: p(X), p(Y) -> +q(X, Y).
		rule r2: q(X, X) -> -q(X, X).
		rule r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	db, err := park.ParseDatabase(u, "nodes", `p(a). p(b). p(c).`)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's SELECT: no loops, no arcs between a and c; keep all
	// other arcs even when transitivity would imply them.
	sel := park.StrategyFunc{
		StrategyName: "graph-policy",
		Fn: func(in *park.SelectInput) (park.Decision, error) {
			args := in.Universe.AtomArgs(in.Conflict.Atom)
			x, y := in.Universe.Syms.Name(args[0]), in.Universe.Syms.Name(args[1])
			if x == y || (x == "a" && y == "c") || (x == "c" && y == "a") {
				return park.DecideDelete, nil
			}
			return park.DecideInsert, nil
		},
	}

	eng, err := park.NewEngine(u, prog, sel, park.Options{
		Tracer: &park.TextTracer{W: os.Stdout, U: u, P: prog},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfinal graph:", park.FormatDatabase(u, res.Output))
	fmt.Printf("%d conflicts resolved, %d rule instances blocked\n",
		res.Stats.Conflicts, res.Stats.BlockedInstances)
	fmt.Println("\nblocked instances (note the r3 instances the paper calls")
	fmt.Println("\"unnecessarily blocked\" — harmless for the result):")
	for _, g := range res.Blocked {
		fmt.Println("  ", g.String(u, eng.Program()))
	}
}
