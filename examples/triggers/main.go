// Trigger DDL: the SQL-flavored frontend in the style of the systems
// the paper cites (Ariel, the Postgres rule system, Starburst).
// CREATE TRIGGER / CREATE RULE statements are translated into active
// rules and evaluated under the PARK semantics — so triggers written
// in a familiar DDL get a clean, deterministic, conflict-resolving
// semantics for free.
package main

import (
	"context"
	"fmt"
	"log"

	park "repro"
)

const ddl = `
	CREATE TRIGGER big_order
	  AFTER INSERT ON order_in(O, Amount)
	  WHEN Amount >= 1000
	  DO INSERT review(O), INSERT order2(O, Amount);

	CREATE TRIGGER small_order
	  AFTER INSERT ON order_in(O, Amount)
	  WHEN Amount < 1000
	  DO INSERT order2(O, Amount);

	CREATE TRIGGER cancel
	  AFTER DELETE ON order2(O, Amount)
	  DO INSERT cancelled(O);

	CREATE RULE blocklist PRIORITY 9
	  WHEN order2(O, Amount), from(O, C), blocked(C)
	  DO DELETE order2(O, Amount);
`

func main() {
	u := park.NewUniverse()
	prog, err := park.ParseTriggers(u, "ddl", ddl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("translated rules:")
	for i := range prog.Rules {
		fmt.Printf("  %s: %s.\n", prog.RuleLabel(i), prog.Rules[i].String(u))
	}

	db, err := park.ParseDatabase(u, "db", `
		from(o1, acme). from(o2, evil).
		blocked(evil).
	`)
	if err != nil {
		log.Fatal(err)
	}
	ups, err := park.ParseUpdates(u, "tx", `
		+order_in(o1, 2500).
		+order_in(o2, 400).
	`)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := park.NewEngine(u, prog, park.Priority(park.Inertia()), park.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, ups)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter the order transaction:")
	fmt.Println("  ", park.FormatDatabase(u, res.Output))
	for _, rc := range res.Conflicts {
		fmt.Printf("   conflict on %s -> %s (blocklist beats intake)\n",
			u.AtomString(rc.Conflict.Atom), rc.Decision)
	}
	// o1 (2500, acme): accepted with review. o2 (400, evil): the
	// blocklist rule conflicts with the intake trigger and wins by
	// priority; the cancel trigger... does not fire, because -order2
	// never becomes a mark (the insert was suppressed, not undone).
}
