// Monitoring: the paper's §5 names "databases that monitor critical
// systems (e.g. power plants)" as a natural home for active rules.
// This example runs a small plant-monitoring database: sensor
// readings arrive as transactions, rules raise and clear alarms
// (including an escalation cascade through event literals), and a
// watcher receives every committed change over the server's
// transaction stream — the notification half of an active DBMS.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"repro/internal/persist"
	"repro/internal/server"
)

const rules = `
	% a high reading raises an alarm, a normal one clears it
	rule raise priority 5: reading(S, high), monitored(S) -> +alarm(S).
	rule clear priority 1: reading(S, normal), alarm(S) -> -alarm(S).

	% raising an alarm on a critical sensor escalates (event literal)
	rule escalate: +alarm(S), critical(S) -> +page_operator(S).

	% clearing an alarm retracts the page
	rule depage: -alarm(S), page_operator(S) -> -page_operator(S).
`

func main() {
	dir, err := os.MkdirTemp("", "plant-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := persist.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	srv := server.New(store)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &server.Client{BaseURL: ts.URL}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if _, err := client.SetProgram(ctx, rules, "priority"); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Transact(ctx, `
		+monitored(boiler). +monitored(turbine).
		+critical(boiler).
	`); err != nil {
		log.Fatal(err)
	}

	// The control-room watcher: every committed change streams in.
	events, err := client.Watch(ctx)
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for txn := range events {
			for _, f := range txn.Added {
				fmt.Printf("  [watch] txn %d: + %s\n", txn.Seq, f)
			}
			for _, f := range txn.Removed {
				fmt.Printf("  [watch] txn %d: - %s\n", txn.Seq, f)
			}
		}
	}()

	send := func(updates string) {
		fmt.Printf("sensors: %s\n", updates)
		resp, err := client.Transact(ctx, updates)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range resp.Conflicts {
			fmt.Printf("  conflict on %s -> %s\n", c.Atom, c.Decision)
		}
	}

	// The boiler overheats: alarm + page (escalation cascade).
	send(`+reading(boiler, high).`)
	// The turbine also runs hot: alarm, but no page (not critical).
	send(`+reading(turbine, high).`)
	// The boiler recovers: both high and normal readings are present
	// now — raise (priority 5) and clear (priority 1) conflict on the
	// alarm, and rule priority keeps it up until the high reading is
	// retracted too.
	send(`+reading(boiler, normal).`)
	// Retract the high reading. Note the PARK validity rules: within
	// this very transaction the deleted base fact is still positively
	// valid (only its -mark is added), so raise still conflicts with
	// clear and the alarm survives one more transaction...
	send(`-reading(boiler, high).`)
	// ...and an empty follow-up transaction re-evaluates the rules
	// against the post-deletion state: clear wins unopposed, and the
	// -alarm event de-pages the operator.
	send(``)

	facts, err := client.Database(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal state:")
	for _, f := range facts {
		fmt.Println("  ", f)
	}
	cancel()
	<-done
}
