// Referential integrity: the classic active-database use case.
// Foreign-key constraints between orders → customers and
// order_items → orders are maintained by active rules reacting to
// deletion events with cascading deletes (ON DELETE CASCADE) and to
// insertion events with rejection of dangling references (RESTRICT,
// expressed here as a compensating delete). A protected customer
// demonstrates conflict resolution between the cascade and a
// retention rule.
package main

import (
	"context"
	"fmt"
	"log"

	park "repro"
)

const schema = `
	% ON DELETE CASCADE: deleting a customer deletes their orders...
	rule cascade_orders:
		-customer(C), order(O, C) -> -order(O, C).

	% ...and deleting an order deletes its items (two-level cascade
	% through the deletion event of the first rule)
	rule cascade_items:
		-order(O, C), item(I, O) -> -item(I, O).

	% RESTRICT on insert: a new order whose customer does not exist is
	% rejected by a compensating delete
	rule restrict_orders:
		+order(O, C), !customer(C) -> -order(O, C).

	% retention (priority 9): customers with open disputes must not
	% lose their orders — conflicts with cascade_orders (priority 1)
	rule retention priority 9:
		dispute(O), order(O, C) -> +order(O, C).
	rule cascade_orders_prio priority 1:
		-customer(C), order(O, C) -> -order(O, C).
`

const data = `
	customer(alice). customer(bob).
	order(o1, alice). order(o2, alice). order(o3, bob).
	item(i1, o1). item(i2, o1). item(i3, o2). item(i4, o3).
	dispute(o3).
`

func main() {
	u := park.NewUniverse()
	prog, err := park.ParseProgram(u, "schema", schema)
	if err != nil {
		log.Fatal(err)
	}
	db, err := park.ParseDatabase(u, "data", data)
	if err != nil {
		log.Fatal(err)
	}

	// Static analysis shows where conflicts can happen before running
	// anything.
	rep := park.Analyze(u, prog)
	fmt.Println("static analysis:")
	for _, pair := range rep.Pairs {
		fmt.Printf("  conflict pair: %s vs %s on %s\n",
			prog.RuleLabel(pair.Insert), prog.RuleLabel(pair.Delete), pair.Example)
	}

	eng, err := park.NewEngine(u, prog, park.Priority(park.Inertia()), park.Options{Explain: true})
	if err != nil {
		log.Fatal(err)
	}

	// Transaction 1: delete alice -> her orders and their items cascade
	// away.
	ups, err := park.ParseUpdates(u, "tx1", `-customer(alice).`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, ups)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter deleting alice:")
	fmt.Println("  ", park.FormatDatabase(u, res.Output))

	// Explain the cascading deletion of item i1.
	id, _ := parseAtom(u, "item(i1, o1)")
	fmt.Println("\nwhy is item(i1, o1) gone?")
	fmt.Print(res.Explainer.Format(res.Explainer.Explain(id)))

	// Transaction 2 (on the result): delete bob — but o3 is disputed,
	// so the retention rule wins the conflict and o3 survives while
	// bob's customer record still goes.
	ups2, err := park.ParseUpdates(u, "tx2", `-customer(bob).`)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := eng.Run(context.Background(), res.Output, ups2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter deleting bob (o3 disputed):")
	fmt.Println("  ", park.FormatDatabase(u, res2.Output))
	for _, rc := range res2.Conflicts {
		fmt.Printf("   conflict on %s -> %s\n", u.AtomString(rc.Conflict.Atom), rc.Decision)
	}

	// Transaction 3: inserting an order for a deleted customer is
	// rejected by the RESTRICT rule.
	ups3, err := park.ParseUpdates(u, "tx3", `+order(o9, alice).`)
	if err != nil {
		log.Fatal(err)
	}
	res3, err := eng.Run(context.Background(), res2.Output, ups3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter inserting order(o9, alice) with alice gone:")
	fmt.Println("  ", park.FormatDatabase(u, res3.Output))
}

func parseAtom(u *park.Universe, text string) (park.AID, error) {
	db, err := park.ParseDatabase(u, "atom", text+".")
	if err != nil {
		return -1, err
	}
	return db.Atoms()[0], nil
}
