// Voting: the §5 voting scheme with a panel of critics. Three critics
// with different intuitions vote on every conflict: a recency critic
// prefers what the rules (as opposed to the old database) say, a
// source-reliability critic trusts high-priority rules, and a
// conservative critic always votes to keep the original state. The
// majority wins; ties fall back to inertia.
package main

import (
	"context"
	"fmt"
	"log"

	park "repro"
)

func main() {
	// Sensor fusion: two sources disagree about an alarm.
	program := `
		rule sensorA priority 3: reading(a, high), monitored(X) -> +alarm(X).
		rule sensorB priority 1: reading(b, low),  monitored(X) -> -alarm(X).
	`
	db := `
		reading(a, high). reading(b, low).
		monitored(boiler). monitored(turbine).
		alarm(turbine).
	`

	recency := park.CriticFunc{CriticName: "recency", Fn: func(in *park.SelectInput) (park.Decision, error) {
		// Prefer inserts: new information beats absence.
		return park.DecideInsert, nil
	}}
	reliability := park.CriticFunc{CriticName: "reliability", Fn: func(in *park.SelectInput) (park.Decision, error) {
		// Trust the side backed by the higher-priority rule.
		best := func(gs []park.Grounding) int {
			m := -1
			for _, g := range gs {
				if p := in.Program.Rules[g.Rule].Priority; p > m {
					m = p
				}
			}
			return m
		}
		if best(in.Conflict.Ins) >= best(in.Conflict.Del) {
			return park.DecideInsert, nil
		}
		return park.DecideDelete, nil
	}}
	conservative := park.CriticFunc{CriticName: "conservative", Fn: func(in *park.SelectInput) (park.Decision, error) {
		if in.Database.Contains(in.Conflict.Atom) {
			return park.DecideInsert, nil
		}
		return park.DecideDelete, nil
	}}

	res, u, err := park.Eval(context.Background(), program, db, ``,
		park.Voting(recency, reliability, conservative), park.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", park.FormatDatabase(u, res.Output))
	for _, rc := range res.Conflicts {
		fmt.Printf("conflict on %s -> %s\n", u.AtomString(rc.Conflict.Atom), rc.Decision)
	}
	// boiler: recency=insert, reliability=insert (3 >= 1),
	// conservative=delete (not in D) -> 2:1 insert.
	// turbine: conservative=insert (in D) -> 3:0 insert.
	fmt.Println("\nboth alarms stay on: the 2:1 and 3:0 majorities chose insert")
}
