// Payroll triggers: a realistic ECA scenario in the domain the paper's
// §2 example comes from. A transaction deactivates employees; event
// rules cascade the deactivation into an audit trail, payroll cleanup
// and manager notification, with a conflict between a retention rule
// (keep payroll of employees on legal hold) and the cleanup rule,
// resolved by rule priority.
package main

import (
	"context"
	"fmt"
	"log"

	park "repro"
)

func main() {
	u := park.NewUniverse()
	prog, err := park.ParseProgram(u, "hr", `
		% cleanup (priority 1): inactive employees lose payroll records
		rule cleanup priority 1:
			emp(X), !active(X), payroll(X, S) -> -payroll(X, S).

		% retention (priority 5): employees on legal hold keep payroll
		rule retention priority 5:
			emp(X), hold(X), payroll(X, S) -> +payroll(X, S).

		% the deactivation event feeds an audit trail (ECA rule)
		rule audit: -active(X), dept(X, D) -> +audit(X, D).

		% notify the department manager for every audited employee
		rule notify: audit(X, D), manager(D, M) -> +notify(M, X).
	`)
	if err != nil {
		log.Fatal(err)
	}
	db, err := park.ParseDatabase(u, "db", `
		emp(tom).  dept(tom, sales).  active(tom).  payroll(tom, 3100).
		emp(ann).  dept(ann, sales).  active(ann).  payroll(ann, 3300).
		emp(bob).  dept(bob, dev).    active(bob).  payroll(bob, 4000).
		manager(sales, mia). manager(dev, dan).
		hold(ann).
	`)
	if err != nil {
		log.Fatal(err)
	}
	// The transaction deactivates tom and ann.
	ups, err := park.ParseUpdates(u, "tx", `-active(tom). -active(ann).`)
	if err != nil {
		log.Fatal(err)
	}

	// Rule priority resolves the cleanup-vs-retention conflict on
	// ann's payroll record in favor of retention.
	eng, err := park.NewEngine(u, prog, park.Priority(park.Inertia()), park.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, ups)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("before:", park.FormatDatabase(u, db))
	fmt.Println("tx:    ", park.FormatUpdates(u, ups))
	fmt.Println("after: ", park.FormatDatabase(u, res.Output))
	fmt.Println()
	for _, rc := range res.Conflicts {
		fmt.Printf("conflict on %s resolved: %s\n",
			u.AtomString(rc.Conflict.Atom), rc.Decision)
	}
	fmt.Printf("\ntom's payroll gone:  %v\n", !contains(u, res.Output, "payroll(tom, 3100)"))
	fmt.Printf("ann's payroll kept:  %v (legal hold won by priority)\n", contains(u, res.Output, "payroll(ann, 3300)"))
	fmt.Printf("bob untouched:       %v\n", contains(u, res.Output, "payroll(bob, 4000)"))
}

func contains(u *park.Universe, d *park.Database, atom string) bool {
	for _, id := range d.Atoms() {
		if u.AtomString(id) == atom {
			return true
		}
	}
	return false
}
