// Quickstart: evaluate a small active-rule program under the PARK
// semantics with the principle of inertia — the paper's §4.1 program
// P1 plus the payroll rule from §2.
package main

import (
	"context"
	"fmt"
	"log"

	park "repro"
)

func main() {
	// P1 from the paper: the conflicting actions on `a` are suppressed
	// by the principle of inertia, so the result is {p, q}.
	res, u, err := park.Eval(context.Background(), `
		p -> +q.
		p -> -a.
		q -> +a.
	`, `p.`, ``, park.Inertia(), park.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("P1 result:", park.FormatDatabase(u, res.Output))
	fmt.Printf("P1 stats:  %d phases, %d conflicts resolved\n\n",
		res.Stats.Phases, res.Stats.Conflicts)

	// The §2 payroll rule: employees that are not active lose their
	// payroll records. Using the explicit engine API this time.
	u2 := park.NewUniverse()
	prog, err := park.ParseProgram(u2, "payroll", `
		emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
	`)
	if err != nil {
		log.Fatal(err)
	}
	db, err := park.ParseDatabase(u2, "hr", `
		emp(tom). emp(ann).
		active(ann).
		payroll(tom, 100). payroll(ann, 120).
	`)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := park.NewEngine(u2, prog, park.Inertia(), park.Options{})
	if err != nil {
		log.Fatal(err)
	}
	out, err := eng.Run(context.Background(), db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("payroll before:", park.FormatDatabase(u2, db))
	fmt.Println("payroll after: ", park.FormatDatabase(u2, out.Output))
}
