// ECA cascade: full event-condition-action rules (§4.3). A
// transaction's updates trigger event literals (+a / -a in rule
// bodies), which cascade through an order-fulfillment pipeline. A
// compensation rule tries to undo one of the transaction's own
// updates; the ProtectUpdates combinator (the §4.3 discussion about
// updates that "cannot be overwritten") keeps the transaction's word.
package main

import (
	"context"
	"fmt"
	"log"

	park "repro"
)

const program = `
	% the arrival of an order reserves stock
	rule reserve: +order(O, I), stock(I) -> +reserved(O, I).

	% reserving triggers shipment planning
	rule plan: +reserved(O, I) -> +shipment(O).

	% shipping an order consumes the stock record
	rule consume: shipment(O), reserved(O, I), stock(I) -> -stock(I).

	% a cancellation event revokes the reservation...
	rule cancel: -order(O, I), reserved(O, I) -> -reserved(O, I).

	% ...and a (misguided) compensation rule tries to resurrect
	% cancelled orders with pending shipments: conflicts with the
	% transaction's own -order update.
	rule compensate: shipment(O), -order(O, I) -> +order(O, I).
`

const database = `
	stock(widget). stock(gadget).
	order(o1, widget). reserved(o1, widget). shipment(o1).
`

func main() {
	run := func(name string, strategy park.Strategy) {
		u := park.NewUniverse()
		prog, err := park.ParseProgram(u, "pipeline", program)
		if err != nil {
			log.Fatal(err)
		}
		db, err := park.ParseDatabase(u, "state", database)
		if err != nil {
			log.Fatal(err)
		}
		ups, err := park.ParseUpdates(u, "tx", `
			+order(o2, gadget).
			-order(o1, widget).
		`)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := park.NewEngine(u, prog, strategy, park.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(context.Background(), db, ups)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s\n", name)
		fmt.Println("result:", park.FormatDatabase(u, res.Output))
		for _, rc := range res.Conflicts {
			fmt.Printf("conflict on %s -> %s\n", u.AtomString(rc.Conflict.Atom), rc.Decision)
		}
		fmt.Println()
	}

	// Plain inertia: order(o1, widget) was in D, so the compensation
	// rule wins the conflict and the cancelled order survives.
	run("inertia (compensation wins)", park.Inertia())

	// ProtectUpdates: the transaction's -order(o1, widget) cannot be
	// overridden; the cancellation sticks and the cascade revokes the
	// reservation.
	run("protect-updates (transaction wins)", park.ProtectUpdates(park.Inertia()))
}
