// Banking: §5's "Declarative Needs" discussion says that in banking
// applications the principle of inertia may be used, delaying a
// transaction until the human banker can be queried — i.e. inertia as
// the safe automatic default, escalating to interactive resolution.
// This example wires exactly that: a Fallback of a guarded automatic
// policy and an Interactive strategy (scripted here; hook it to
// os.Stdin for a real terminal).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	park "repro"
)

const rules = `
	% an approved transfer debits the account flag
	rule apply: transfer(T, Acct), approved(T) -> -hold(Acct).

	% compliance places a hold on flagged accounts
	rule flag: suspicious(Acct) -> +hold(Acct).

	% the branch wants to release holds for premium customers
	rule release: premium(Acct), hold(Acct) -> -hold(Acct).
`

// autoPolicy resolves conflicts automatically ONLY when the amount at
// stake is small (the atom is not about a flagged account); otherwise
// it abstains and the interactive policy takes over — the "delay the
// transaction until the human banker can be queried" workflow.
func autoPolicy() park.Strategy {
	return park.StrategyFunc{
		StrategyName: "auto-inertia-small",
		Fn: func(in *park.SelectInput) (park.Decision, error) {
			name := in.Universe.AtomString(in.Conflict.Atom)
			if strings.Contains(name, "vip") {
				return 0, park.ErrUndecided // escalate to the banker
			}
			if in.Database.Contains(in.Conflict.Atom) {
				return park.DecideInsert, nil
			}
			return park.DecideDelete, nil
		},
	}
}

func main() {
	// The banker's scripted answers: keep the hold on the VIP account.
	bankerIn := strings.NewReader("insert\n")
	strategy := park.Fallback(
		autoPolicy(),
		park.Interactive(bankerIn, os.Stdout),
	)

	res, u, err := park.Eval(context.Background(), rules, `
		premium(acct_vip). premium(acct_small).
		suspicious(acct_vip). suspicious(acct_small).
	`, ``, strategy, park.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal state:", park.FormatDatabase(u, res.Output))
	for _, rc := range res.Conflicts {
		fmt.Printf("conflict on %s resolved: %s\n", u.AtomString(rc.Conflict.Atom), rc.Decision)
	}
	fmt.Println("\nthe small account's hold was auto-released (inertia: not in D);")
	fmt.Println("the VIP account's hold went to the banker, who kept it.")
}
